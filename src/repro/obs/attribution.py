"""Critical-path attribution: *which node* made an operation slow.

Every client phase in the paper is ``repeat broadcast until majority`` —
Θ(n) messages per operation — so one slow-but-alive responder can sit in
the tail of every operation without ever being *absent*.  The quorum
layer records one :class:`QuorumRound` per :class:`~repro.net.quorum.
AckCollector` lifetime: request start time, per-responder request→reply
latency (first reply per responder, **including replies that arrive
after the quorum completed** — those are exactly the limping node's),
and the *completer*, the responder whose reply reached the threshold.

The reducers in this module run offline over the recorded span tree:

* :func:`attribute_op` names the slowest responder and the dominant
  phase of a single operation span;
* :func:`blame_table` aggregates attributions into one row per node —
  how often it was the op's slowest responder, and what latency the
  cluster observed towards it;
* :func:`dominant_phases` tallies where operation time went by phase.

Nothing here touches the hot path: recording happens behind ``obs is
not None`` tests in :mod:`repro.net.quorum` / :mod:`repro.net.node`, and
the reducers only ever read finished spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.spans import Span

__all__ = [
    "QuorumRound",
    "OpAttribution",
    "attribute_op",
    "attribute_ops",
    "blame_aggregate",
    "merge_blame",
    "blame_rows",
    "blame_table",
    "dominant_phases",
    "slowest_node",
]


@dataclass(slots=True)
class QuorumRound:
    """Per-responder timing of one ``broadcast … until threshold`` round."""

    #: Reply message kind awaited (e.g. ``"WRITEack"``).
    kind: str
    #: Requester node id.
    node: int
    #: Kernel time of the first broadcast (collector entry).
    start: float
    #: Replies needed to complete the round.
    threshold: int
    #: Kernel time the threshold was reached (``None`` if never).
    end: float | None = None
    #: Responder whose accepted reply reached the threshold.
    completer: int | None = None
    #: Responder id -> first-reply latency relative to ``start``.  Late
    #: replies (after ``end``) keep accumulating here — that is the
    #: whole point: the limping node shows up *because* it missed the
    #: quorum, not despite it.
    replies: dict[int, float] = field(default_factory=dict)

    def record(self, sender: int, now: float) -> None:
        """Record ``sender``'s first reply to this round (duplicates ignored)."""
        if sender not in self.replies:
            self.replies[sender] = now - self.start

    @property
    def duration(self) -> float | None:
        """Time from first broadcast to threshold (``None`` if unsatisfied)."""
        if self.end is None:
            return None
        return self.end - self.start

    def slowest(self) -> tuple[int, float] | None:
        """``(responder, latency)`` of the slowest recorded reply."""
        if not self.replies:
            return None
        responder = max(self.replies, key=lambda k: (self.replies[k], k))
        return responder, self.replies[responder]

    def to_dict(self) -> dict:
        """A JSON-ready view (used by the JSONL exporter and span dumps)."""
        return {
            "kind": self.kind,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "threshold": self.threshold,
            "completer": self.completer,
            "replies": {str(k): v for k, v in sorted(self.replies.items())},
        }


@dataclass(slots=True)
class OpAttribution:
    """Where one operation's time went: slowest responder, dominant phase."""

    span_id: int
    op_id: int | None
    name: str
    node: int
    duration: float
    #: Responder with the largest observed request→reply latency across
    #: the op's rounds (``None`` when the op ran no quorum rounds).
    slowest_responder: int | None
    slowest_latency: float
    #: Responder that completed the op's longest round (the reply the
    #: requester was actually waiting for).
    completer: int | None
    dominant_phase: str
    #: Fraction of the op's duration spent in the dominant phase.
    dominant_share: float
    rounds: int

    def to_dict(self) -> dict:
        """A JSON-ready view of the attribution record."""
        return {
            "span_id": self.span_id,
            "op_id": self.op_id,
            "name": self.name,
            "node": self.node,
            "duration": self.duration,
            "slowest_responder": self.slowest_responder,
            "slowest_latency": self.slowest_latency,
            "completer": self.completer,
            "dominant_phase": self.dominant_phase,
            "dominant_share": self.dominant_share,
            "rounds": self.rounds,
        }


def _phase_segments(span: Span) -> list[tuple[str, float]]:
    """``(label, length)`` segments of the span, split at phase marks."""
    end = span.end if span.end is not None else span.start
    if not span.phases:
        return [(span.name, end - span.start)]
    segments: list[tuple[str, float]] = []
    lead = span.phases[0][0] - span.start
    if lead > 0.0:
        segments.append(("dispatch", lead))
    for position, (time, label) in enumerate(span.phases):
        until = (
            span.phases[position + 1][0]
            if position + 1 < len(span.phases)
            else end
        )
        segments.append((label, max(until - time, 0.0)))
    return segments


def attribute_op(span: Span) -> OpAttribution | None:
    """Reduce one finished operation span to its attribution record.

    Returns ``None`` for spans that never closed (no duration to
    attribute).  The slowest responder is taken over *all* recorded
    replies of all rounds — including post-quorum stragglers — with ties
    broken towards the higher node id, deterministically.
    """
    if span.end is None or span.node is None:
        return None
    slowest_responder: int | None = None
    slowest_latency = 0.0
    completer: int | None = None
    longest_round = -1.0
    for rnd in span.rounds:
        worst = rnd.slowest()
        if worst is not None and (
            slowest_responder is None
            or (worst[1], worst[0]) > (slowest_latency, slowest_responder)
        ):
            slowest_responder, slowest_latency = worst
        duration = rnd.duration
        if duration is not None and duration > longest_round:
            longest_round = duration
            completer = rnd.completer
    segments = _phase_segments(span)
    label, length = max(segments, key=lambda seg: seg[1])
    duration = span.end - span.start
    return OpAttribution(
        span_id=span.span_id,
        op_id=span.op_id,
        name=span.name,
        node=span.node,
        duration=duration,
        slowest_responder=slowest_responder,
        slowest_latency=slowest_latency,
        completer=completer,
        dominant_phase=label,
        dominant_share=length / duration if duration > 0 else 1.0,
        rounds=len(span.rounds),
    )


def attribute_ops(spans: Iterable[Span]) -> list[OpAttribution]:
    """Attribution records for every finished operation span."""
    records = []
    for span in spans:
        if span.parent_id is None:
            continue
        record = attribute_op(span)
        if record is not None:
            records.append(record)
    return records


def blame_aggregate(spans: Iterable[Span]) -> dict:
    """Mergeable per-node blame aggregate over all attributed operations.

    The shape is plain dicts (pickle/JSON-safe) so parallel workers can
    ship it to the parent session and :func:`merge_blame` can fold
    several together: ``{"attributed": N, "nodes": {id: {blamed,
    completed, replies, latency_sum, latency_max}}}``.
    """
    spans = list(spans)
    records = attribute_ops(spans)
    attributed = [r for r in records if r.slowest_responder is not None]
    nodes: dict[int, dict] = {}

    def entry(node: int) -> dict:
        return nodes.setdefault(
            node,
            {
                "blamed": 0,
                "completed": 0,
                "replies": 0,
                "latency_sum": 0.0,
                "latency_max": 0.0,
            },
        )

    for record in attributed:
        entry(record.slowest_responder)["blamed"] += 1
        if record.completer is not None:
            entry(record.completer)["completed"] += 1
    for span in spans:
        for rnd in span.rounds:
            for responder, latency in rnd.replies.items():
                row = entry(responder)
                row["replies"] += 1
                row["latency_sum"] += latency
                if latency > row["latency_max"]:
                    row["latency_max"] = latency
    return {"attributed": len(attributed), "nodes": nodes}


def merge_blame(into: dict, other: dict) -> None:
    """Fold one :func:`blame_aggregate` into another, in place."""
    into["attributed"] += other["attributed"]
    for node, row in other["nodes"].items():
        node = int(node)
        target = into["nodes"].setdefault(
            node,
            {
                "blamed": 0,
                "completed": 0,
                "replies": 0,
                "latency_sum": 0.0,
                "latency_max": 0.0,
            },
        )
        target["blamed"] += row["blamed"]
        target["completed"] += row["completed"]
        target["replies"] += row["replies"]
        target["latency_sum"] += row["latency_sum"]
        target["latency_max"] = max(target["latency_max"], row["latency_max"])


def blame_rows(aggregate: dict) -> list[dict]:
    """Render a blame aggregate as per-node table rows, sorted by node."""
    total = aggregate["attributed"]
    rows = []
    for node in sorted(aggregate["nodes"], key=int):
        row = aggregate["nodes"][node]
        count = row["replies"]
        rows.append(
            {
                "node": int(node),
                "blamed": row["blamed"],
                "blame_share": row["blamed"] / total if total else 0.0,
                "completed": row["completed"],
                "replies": count,
                "mean_reply": row["latency_sum"] / count if count else 0.0,
                "max_reply": row["latency_max"],
            }
        )
    return rows


def blame_table(spans: Iterable[Span]) -> list[dict]:
    """Per-node blame rows aggregated over all attributed operations.

    Each row carries: the node id, how many ops named it the slowest
    responder (``blamed``), that count as a fraction of attributed ops
    (``blame_share``), how many rounds it completed (``completed``), and
    the mean/max request→reply latency the cluster observed towards it.
    Rows are sorted by node id; nodes that never replied still get a row
    if another node blamed them, with zero reply statistics.
    """
    return blame_rows(blame_aggregate(spans))


def dominant_phases(spans: Iterable[Span]) -> dict[str, float]:
    """Total time spent per phase label across all finished op spans."""
    totals: dict[str, float] = {}
    for span in spans:
        if span.parent_id is None or span.end is None:
            continue
        for label, length in _phase_segments(span):
            totals[label] = totals.get(label, 0.0) + length
    return dict(sorted(totals.items()))


def slowest_node(spans: Iterable[Span]) -> tuple[int, float] | None:
    """``(node, blame_share)`` of the most-blamed node, or ``None``."""
    rows = blame_table(list(spans))
    if not rows:
        return None
    top = max(rows, key=lambda row: (row["blamed"], -row["node"]))
    if top["blamed"] == 0:
        return None
    return top["node"], top["blame_share"]
