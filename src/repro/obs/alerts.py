"""Alert engine: threshold/SLO rules evaluated online over health + metrics.

Rules turn a :class:`~repro.obs.health.HealthReport` (and optionally the
metric registry's collected values) into :class:`Alert` records.  The
:class:`AlertEngine` is edge-triggered with latching: a rule firing for
the same ``(rule, node)`` key on consecutive evaluations raises one
alert, which stays *active* until an evaluation where the condition no
longer holds.  Everything ever raised is kept in ``history`` so chaos
campaigns and the dashboard can report what happened during a run.

The default rule set mirrors the health states (limping/crashed/
corrupt-suspect) plus a retransmit-storm rule; SLO rules over latency
histograms can be added per run (``SloRule("load.latency", "p99", 50)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.obs.health import (
    CORRUPT_SUSPECT,
    CRASHED,
    LIMPING,
    HealthReport,
)

__all__ = [
    "Alert",
    "AlertRule",
    "HealthStateRule",
    "RetransmitStormRule",
    "SloRule",
    "AlertEngine",
    "default_rules",
]

#: Alert severities (informational ordering only).
WARNING = "warning"
CRITICAL = "critical"


@dataclass(slots=True)
class Alert:
    """One raised alert: which rule, which node (if any), and why."""

    rule: str
    severity: str
    node: int | None
    message: str
    time: float
    resolved_at: float | None = None

    @property
    def key(self) -> tuple[str, int | None]:
        return (self.rule, self.node)

    def to_dict(self) -> dict:
        """A JSON-ready view of the alert."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "node": self.node,
            "message": self.message,
            "time": self.time,
            "resolved_at": self.resolved_at,
        }


class AlertRule:
    """Base class: subclasses return the alerts that currently hold."""

    name = "rule"
    severity = WARNING

    def evaluate(
        self, report: HealthReport, values: dict[str, Any]
    ) -> list[Alert]:
        """Alerts whose condition holds right now (engine handles latching)."""
        raise NotImplementedError


class HealthStateRule(AlertRule):
    """Fires one alert per node classified in the watched health state."""

    def __init__(self, state: str, severity: str) -> None:
        self.state = state
        self.name = f"node-{state}"
        self.severity = severity

    def evaluate(
        self, report: HealthReport, values: dict[str, Any]
    ) -> list[Alert]:
        """One alert per node currently classified in the watched state."""
        alerts = []
        for health in report.nodes:
            if health.state == self.state:
                alerts.append(
                    Alert(
                        rule=self.name,
                        severity=self.severity,
                        node=health.node,
                        message=(
                            f"node {health.node} is {self.state} "
                            f"(service ewma {health.service_ewma:.3g}, "
                            f"silence {health.silence:.3g}, "
                            f"detections {health.detections})"
                        ),
                        time=report.time,
                    )
                )
        return alerts


class RetransmitStormRule(AlertRule):
    """Fires when a node's retransmit rate exceeds a fixed threshold."""

    name = "retransmit-storm"
    severity = WARNING

    def __init__(self, rate_threshold: float = 10.0) -> None:
        self.rate_threshold = rate_threshold

    def evaluate(
        self, report: HealthReport, values: dict[str, Any]
    ) -> list[Alert]:
        """One alert per node whose retransmit rate crosses the threshold."""
        alerts = []
        for health in report.nodes:
            if health.retransmit_rate > self.rate_threshold:
                alerts.append(
                    Alert(
                        rule=self.name,
                        severity=self.severity,
                        node=health.node,
                        message=(
                            f"node {health.node} retransmitting at "
                            f"{health.retransmit_rate:.3g}/s "
                            f"(threshold {self.rate_threshold:.3g}/s)"
                        ),
                        time=report.time,
                    )
                )
        return alerts


class SloRule(AlertRule):
    """Fires when a collected metric value crosses an SLO threshold.

    ``metric`` names a registry instrument; for histogram-valued metrics
    ``stat`` selects the summary entry (``"p99"``, ``"mean"``, …), for
    scalar metrics pass ``stat=None``.
    """

    severity = CRITICAL

    def __init__(
        self,
        metric: str,
        stat: str | None,
        threshold: float,
        severity: str = CRITICAL,
    ) -> None:
        self.metric = metric
        self.stat = stat
        self.threshold = threshold
        self.severity = severity
        suffix = f".{stat}" if stat else ""
        self.name = f"slo:{metric}{suffix}"

    def evaluate(
        self, report: HealthReport, values: dict[str, Any]
    ) -> list[Alert]:
        """A single alert when the watched metric exceeds its SLO."""
        value = values.get(self.metric)
        if isinstance(value, dict):
            value = value.get(self.stat) if self.stat else None
        if value is None or value <= self.threshold:
            return []
        return [
            Alert(
                rule=self.name,
                severity=self.severity,
                node=None,
                message=(
                    f"{self.metric}{'.' + self.stat if self.stat else ''} = "
                    f"{value:.4g} exceeds SLO {self.threshold:.4g}"
                ),
                time=report.time,
            )
        ]


def default_rules() -> list[AlertRule]:
    """The standard rule set: one per unhealthy state + retransmit storm."""
    return [
        HealthStateRule(LIMPING, WARNING),
        HealthStateRule(CRASHED, CRITICAL),
        HealthStateRule(CORRUPT_SUSPECT, CRITICAL),
        RetransmitStormRule(),
    ]


class AlertEngine:
    """Evaluates rules, latches active alerts, records history."""

    def __init__(self, rules: Iterable[AlertRule] | None = None) -> None:
        self.rules: list[AlertRule] = (
            list(rules) if rules is not None else default_rules()
        )
        self._active: dict[tuple[str, int | None], Alert] = {}
        self.history: list[Alert] = []

    def evaluate(
        self,
        report: HealthReport,
        values: dict[str, Any] | None = None,
    ) -> list[Alert]:
        """Run every rule; return only the *newly raised* alerts.

        Conditions that held on the previous evaluation stay active
        without re-raising; conditions that cleared resolve their alert
        (stamping ``resolved_at``).
        """
        values = values if values is not None else {}
        holding: dict[tuple[str, int | None], Alert] = {}
        for rule in self.rules:
            for alert in rule.evaluate(report, values):
                holding.setdefault(alert.key, alert)
        raised = []
        for key, alert in holding.items():
            if key not in self._active:
                self._active[key] = alert
                self.history.append(alert)
                raised.append(alert)
        for key in list(self._active):
            if key not in holding:
                self._active.pop(key).resolved_at = report.time
        return raised

    def evaluate_session(
        self, obs: Any, values: dict[str, Any] | None = None
    ) -> list[Alert]:
        """Evaluate against an observability session's live clusters.

        Samples every cluster's health monitor and evaluates the rules
        over the combined node list in one pass (one pass, so latching
        works across the whole session).  ``values`` defaults to the
        session's collected metrics.  Returns newly raised alerts.
        """
        reports = [cobs.health.sample() for cobs in obs.clusters]
        if not reports:
            return []
        combined = HealthReport(
            time=max(report.time for report in reports),
            nodes=[health for report in reports for health in report.nodes],
        )
        if values is None:
            values = obs.collect()
        return self.evaluate(combined, values)

    def active(self) -> list[Alert]:
        """Currently-active alerts, ordered by raise time."""
        return sorted(self._active.values(), key=lambda a: (a.time, a.rule))

    def to_dict(self) -> dict:
        """Active and historical alerts as JSON-ready dicts."""
        return {
            "active": [a.to_dict() for a in self.active()],
            "history": [a.to_dict() for a in self.history],
        }
