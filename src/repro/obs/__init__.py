"""``repro.obs``: the unified observability layer.

Spans for every ``write()``/``snapshot()``, a kernel/network/stabilization
metric registry, a causal message trace, and exporters (Chrome
``trace_event`` for Perfetto, JSONL, terminal summary).  See
``docs/observability.md`` for the span model, the metric catalog, and the
overhead contract.

Quick start::

    from repro import ClusterConfig, SimBackend
    from repro.obs import Observability, session

    with session() as obs:                   # ambient: clusters auto-attach
        cluster = SimBackend("ss-nonblocking", ClusterConfig(n=4))
        cluster.write_sync(0, b"hello")
    obs.finish()
    print(obs.summary())                     # terminal tables
    trace = obs.chrome_trace()               # dict for json.dump(...)

or, from the CLI::

    python -m repro experiments e01 --trace-out trace.json --stats
"""

from repro.obs.observe import (
    ClusterObs,
    KernelStats,
    Observability,
    ProcessObs,
    current_session,
    session,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileHistogram,
)
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "Observability",
    "ClusterObs",
    "KernelStats",
    "ProcessObs",
    "session",
    "current_session",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileHistogram",
    "Span",
    "SpanRecorder",
]
