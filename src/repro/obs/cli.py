"""CLI plumbing for observability: ``--trace-out`` / ``--jsonl-out`` / ``--stats``.

Mirrors :func:`repro.harness.parallel.extract_jobs`: subcommands call
:func:`extract_obs_flags` to split the observability flags out of their
argv, then wrap their work in :func:`observe_cli`, which installs an
ambient session (so clusters built inside experiment runners attach
automatically) and writes the requested exports when the block exits.

Span-level capture (``--trace-out`` / ``--jsonl-out``) forces
``--jobs 1``: spans and message arrows live in worker memory and do not
travel.  ``--stats`` parallelizes: each worker cell runs under its own
session and ships a portable aggregate snapshot back, which the parent
absorbs in cell order (see :meth:`repro.obs.observe.Observability.absorb`),
so the merged summary matches a serial run.
"""

from __future__ import annotations

import json
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.obs.observe import Observability, session

__all__ = ["ObsFlags", "extract_obs_flags", "observe_cli"]


@dataclass(frozen=True)
class ObsFlags:
    """Parsed observability flags for one CLI invocation."""

    trace_out: str | None = None
    jsonl_out: str | None = None
    stats: bool = False

    @property
    def active(self) -> bool:
        """Whether any capture was requested."""
        return bool(self.trace_out or self.jsonl_out or self.stats)

    @property
    def needs_serial(self) -> bool:
        """Whether the requested capture requires in-process execution.

        Span/trace exports do (spans do not travel across workers);
        ``--stats`` alone does not — its aggregates merge.
        """
        return bool(self.trace_out or self.jsonl_out)


def extract_obs_flags(argv: list[str]) -> tuple[ObsFlags, list[str]]:
    """Split the observability flags out of an argv list.

    Supports ``--trace-out FILE`` / ``--trace-out=FILE`` (Chrome trace),
    ``--jsonl-out FILE`` / ``--jsonl-out=FILE`` (JSONL stream), and
    ``--stats`` (terminal summary).  Returns ``(flags, remaining_args)``.
    """
    trace_out: str | None = None
    jsonl_out: str | None = None
    stats = False
    rest: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--trace-out":
            trace_out = next(it, None)
            if trace_out is None:
                raise SystemExit("--trace-out requires a file path")
        elif arg.startswith("--trace-out="):
            trace_out = arg.split("=", 1)[1]
        elif arg == "--jsonl-out":
            jsonl_out = next(it, None)
            if jsonl_out is None:
                raise SystemExit("--jsonl-out requires a file path")
        elif arg.startswith("--jsonl-out="):
            jsonl_out = arg.split("=", 1)[1]
        elif arg == "--stats":
            stats = True
        else:
            rest.append(arg)
    return ObsFlags(trace_out=trace_out, jsonl_out=jsonl_out, stats=stats), rest


def clamp_jobs_for_capture(flags: ObsFlags, jobs: int) -> int:
    """Force serial execution while *span* capture is active (with a notice).

    ``--trace-out``/``--jsonl-out`` record spans in-process, so they
    clamp to one job; ``--stats`` merges across workers and passes
    through untouched.
    """
    if flags.needs_serial and jobs > 1:
        print(
            "trace capture records spans in-process; forcing --jobs 1",
            file=sys.stderr,
        )
        return 1
    return jobs


@contextmanager
def observe_cli(flags: ObsFlags) -> Iterator[Observability | None]:
    """Run a CLI command under an ambient session; export on clean exit."""
    if not flags.active:
        yield None
        return
    obs = Observability()
    with session(obs):
        yield obs
    obs.finish()
    if flags.trace_out:
        payload = obs.chrome_trace()
        Path(flags.trace_out).write_text(json.dumps(payload) + "\n")
        print(
            f"wrote Chrome trace ({len(payload['traceEvents'])} events) to "
            f"{flags.trace_out}; open it at https://ui.perfetto.dev "
            "or about://tracing"
        )
    if flags.jsonl_out:
        Path(flags.jsonl_out).write_text(obs.jsonl())
        print(f"wrote JSONL event stream to {flags.jsonl_out}")
    if flags.stats:
        from repro.harness.report import print_obs_summary

        print_obs_summary(obs)
