"""Operation spans: one structured record per ``write()``/``snapshot()``.

A :class:`Span` is the unit the exporters work from: it carries the
operation id (linking back to the :class:`~repro.analysis.history.
HistoryRecorder` record), the node and algorithm, start/end times on the
simulated clock, phase transitions observed inside the operation,
retransmit counts, and the message traffic attributed to the operation
(via :meth:`MetricsCollector.window <repro.analysis.metrics.
MetricsCollector.window>`).  Spans nest: every operation span's
``parent_id`` points at its cluster's run-level root span.

Causal message links are *not* stored on spans — they come from the
:class:`~repro.analysis.trace.MessageTrace` recorded alongside, and the
Chrome exporter joins the two (spans become slices, trace send/deliver
pairs become flow arrows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Span", "SpanRecorder"]

#: Span lifecycle states.
OPEN = "open"
OK = "ok"
ABORTED = "aborted"


@dataclass(slots=True)
class Span:
    """One timed, structured unit of work on the simulated clock."""

    span_id: int
    name: str
    cluster: int
    node: int | None
    algorithm: str
    start: float
    parent_id: int | None = None
    end: float | None = None
    status: str = OPEN
    op_id: int | None = None
    retransmits: int = 0
    #: ``(time, label)`` phase transitions recorded inside the span.
    phases: list[tuple[float, str]] = field(default_factory=list)
    #: Message traffic sent while the span was open, by kind.
    messages_by_kind: dict[str, int] = field(default_factory=dict)
    message_bytes: int = 0
    #: Transport batching observed while the span was open: wire bundles
    #: flushed and the logical messages they carried (zero when batching
    #: is off — ``messages_by_kind`` always counts the logical messages).
    batch_bundles: int = 0
    batch_messages: int = 0
    #: Quorum rounds executed inside the span
    #: (:class:`repro.obs.attribution.QuorumRound`); late replies keep
    #: landing in a round after the span closes, so attribution sees the
    #: true per-responder timing, not just the quorum that completed.
    rounds: list = field(default_factory=list)

    @property
    def duration(self) -> float | None:
        """Span length in simulated time units (``None`` while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> dict:
        """A JSON-ready view (used by the JSONL exporter)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "cluster": self.cluster,
            "node": self.node,
            "algorithm": self.algorithm,
            "op_id": self.op_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "retransmits": self.retransmits,
            "phases": [list(phase) for phase in self.phases],
            "messages_by_kind": dict(self.messages_by_kind),
            "message_bytes": self.message_bytes,
            "batch_bundles": self.batch_bundles,
            "batch_messages": self.batch_messages,
            "rounds": [r.to_dict() for r in self.rounds],
        }


class SpanRecorder:
    """Creates and stores spans; one recorder per observability session."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._next_id = 1

    def begin(
        self,
        name: str,
        cluster: int,
        node: int | None,
        algorithm: str,
        start: float,
        parent_id: int | None = None,
        op_id: int | None = None,
    ) -> Span:
        """Open a new span and return it."""
        span = Span(
            span_id=self._next_id,
            name=name,
            cluster=cluster,
            node=node,
            algorithm=algorithm,
            start=start,
            parent_id=parent_id,
            op_id=op_id,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, end: float, status: str = OK) -> None:
        """Close a span at simulated time ``end``."""
        span.end = end
        span.status = status

    # -- queries ---------------------------------------------------------------

    def ops(self) -> list[Span]:
        """Operation spans (everything except run-level roots)."""
        return [span for span in self.spans if span.parent_id is not None]

    def roots(self) -> list[Span]:
        """Run-level root spans (one per attached cluster)."""
        return [span for span in self.spans if span.parent_id is None]

    def by_name(self, name: str) -> list[Span]:
        """All spans with the given name (e.g. ``"write"``)."""
        return [span for span in self.spans if span.name == name]

    def open_spans(self) -> list[Span]:
        """Spans not yet closed."""
        return [span for span in self.spans if span.end is None]

    def __len__(self) -> int:
        return len(self.spans)
