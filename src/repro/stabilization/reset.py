"""Global-reset protocol messages and epoch envelope (Section 5).

The bounded-counter transformation (paper Section 5, after Dolev, Petig &
Schiller §10) has two steps once a node observes an operation index at
MAXINT:

* **Step 1** — disable new operations and gossip the maximal indices
  (merging arriving maxima) until all nodes share them;
* **Step 2** — a consensus-based global reset replaces, per operation
  type, the highest index with its initial value 0 while keeping all
  register *values*; then operations are re-enabled.  The decision is
  reached through the self-stabilizing consensus layer
  (:mod:`repro.consensus`) on the instance tag ``("reset", epoch)``; a
  legacy fixed-coordinator mode survives behind
  ``ClusterConfig.reset_mode`` for comparison experiments.

Epoch hygiene: every algorithm message is wrapped in an
:class:`EpochEnvelope`; receivers drop envelopes from other epochs, so
pre-reset messages carrying huge indices cannot re-poison a reset node
(this is the "coloring" of Awerbuch et al.'s reset).  Reset-protocol
messages travel outside the envelope because they must cross epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.register import RegisterArray
from repro.net.message import Message

__all__ = [
    "EpochEnvelope",
    "ResetAlertMessage",
    "ResetJoinMessage",
    "ResetCommitMessage",
    "ResetCommitAckMessage",
    "RESET_KINDS",
]


@dataclass(frozen=True)
class EpochEnvelope(Message):
    """Wraps an algorithm message with the sender's epoch."""

    KIND = "EPOCH"
    epoch: int
    inner: Message

    @property
    def kind(self) -> str:
        # Metrics and experiments should see the inner message kind; the
        # envelope adds only an 8-byte epoch to the wire size.
        return self.inner.kind


@dataclass(frozen=True)
class ResetAlertMessage(Message):
    """Step 1 trigger: some index reached MAXINT; join the reset."""

    KIND = "RESET_ALERT"
    epoch: int


@dataclass(frozen=True)
class ResetJoinMessage(Message):
    """A node's vote: it stopped operations and reports its maximal state.

    Carrying the full register array implements Step 1's "gossip the
    maximal indices while merging arriving information": the pointwise
    join of the votes is the state whose *values* survive the reset.
    Zeroing timestamps without first agreeing on values would leave
    divergent ts-0 entries that ``max⪯`` ties could never reconcile.
    In consensus mode joins are broadcast so every node can assemble
    the merge; in the legacy coordinator mode they go to node 0 alone.
    """

    KIND = "RESET_JOIN"
    epoch: int
    reg: RegisterArray


@dataclass(frozen=True)
class ResetCommitMessage(Message):
    """The decided reset: move to ``new_epoch``.

    ``values`` is the agreed maximal register array; every node installs
    its values with all operation indices reset to 0.  In consensus mode
    this message only *replays* a decision already reached through
    :mod:`repro.consensus` (straggler catch-up); in the legacy
    coordinator mode it carries the coordinator's unilateral decision.
    """

    KIND = "RESET_COMMIT"
    new_epoch: int
    values: RegisterArray


@dataclass(frozen=True)
class ResetCommitAckMessage(Message):
    """A node's confirmation that it applied the commit."""

    KIND = "RESET_COMMIT_ACK"
    new_epoch: int


#: Message kinds that bypass the epoch envelope.
RESET_KINDS = frozenset(
    {
        ResetAlertMessage.KIND,
        ResetJoinMessage.KIND,
        ResetCommitMessage.KIND,
        ResetCommitAckMessage.KIND,
    }
)
