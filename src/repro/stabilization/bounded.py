"""Bounded-counter variants of Algorithms 1 and 3 (paper Section 5).

Wraps the self-stabilizing algorithms with the MAXINT → global-reset
transformation:

* every algorithm message travels inside an :class:`EpochEnvelope`;
  envelopes from other epochs are dropped, so stale pre-reset indices
  cannot re-poison a reset node;
* when any local operation index reaches ``config.max_int`` the node
  raises a ``RESET_ALERT``, stops admitting operations, and votes its
  maximal state in a ``RESET_JOIN``;
* a coordinator (the lowest node id — a fixed-coordinator commit stands
  in for the consensus step, which is sound under the paper's *seldom
  fairness* assumption that all nodes are eventually alive during the
  rare reset; the fully self-stabilizing reset of Awerbuch et al. [12] is
  cited by the paper as the production mechanism) merges all votes and
  commits: indices restart at 0, register *values* survive;
* operations invoked or in flight during the reset window abort with
  :class:`~repro.errors.ResetInProgressError` — the bounded abort the
  paper's criteria explicitly permit during the seldom reset.
"""

from __future__ import annotations

from typing import Any

from repro.core.base import SnapshotResult
from repro.core.register import RegisterArray, TimestampedValue
from repro.core.ss_always import PendingTask, SelfStabilizingAlwaysTerminating
from repro.core.ss_nonblocking import SelfStabilizingNonBlocking
from repro.errors import ResetInProgressError
from repro.net.message import Message
from repro.stabilization.reset import (
    EpochEnvelope,
    ResetAlertMessage,
    ResetCommitAckMessage,
    ResetCommitMessage,
    ResetJoinMessage,
)

__all__ = [
    "BoundedSelfStabilizingNonBlocking",
    "BoundedSelfStabilizingAlwaysTerminating",
]

_RESET_MESSAGE_TYPES = (
    EpochEnvelope,
    ResetAlertMessage,
    ResetJoinMessage,
    ResetCommitMessage,
    ResetCommitAckMessage,
)


class _BoundedCounterMixin:
    """The MAXINT/epoch/global-reset machinery shared by both variants.

    Subclasses provide :meth:`_max_local_index` (overflow detection) and
    :meth:`_apply_index_reset` (zero the indices, keep the values).
    """

    def initialize_state(self) -> None:
        super().initialize_state()
        self.epoch: int = 0
        self.resetting: bool = False
        self.resets_completed: int = 0
        self._join_votes: dict[int, RegisterArray] = {}
        self._commit_acks: set[int] = set()
        self._pending_commit: ResetCommitMessage | None = None

    def _install_reset_handlers(self) -> None:
        self.register_handler(ResetAlertMessage.KIND, self._on_reset_alert)
        self.register_handler(ResetJoinMessage.KIND, self._on_reset_join)
        self.register_handler(ResetCommitMessage.KIND, self._on_reset_commit)
        self.register_handler(
            ResetCommitAckMessage.KIND, self._on_reset_commit_ack
        )

    # -- variant hooks ---------------------------------------------------------

    def _max_local_index(self) -> int:
        """The largest operation index anywhere in this node's state."""
        return max(self.ts, self.ssn, self.reg.max_timestamp())

    def _apply_index_reset(self, values: RegisterArray) -> None:
        """Install the agreed values with all indices back at 0."""
        for k in range(self.config.n):
            self.reg[k] = TimestampedValue(0, values[k].value)
        self.ts = 0
        self.ssn = 0

    # -- epoch envelope ------------------------------------------------------------

    def send(self, dst: int, message: Message) -> None:
        """Wrap algorithm traffic in the current epoch; reset traffic is bare."""
        if isinstance(message, _RESET_MESSAGE_TYPES):
            super().send(dst, message)
        else:
            super().send(dst, EpochEnvelope(epoch=self.epoch, inner=message))

    def deliver(self, sender: int, message: Message) -> None:
        """Unwrap envelopes, dropping those from other epochs."""
        if isinstance(message, EpochEnvelope):
            if message.epoch != self.epoch or self.crashed:
                return
            super().deliver(sender, message.inner)
            return
        super().deliver(sender, message)

    # -- the reset do-forever ----------------------------------------------------------

    @property
    def _coordinator(self) -> int:
        return 0

    async def do_forever_iteration(self) -> None:
        if not self.resetting and self._max_local_index() >= self.config.max_int:
            self._enter_reset()
        if self.resetting:
            # Step 1: alert everyone and vote the maximal local state.
            self.broadcast(
                ResetAlertMessage(epoch=self.epoch), include_self=False
            )
            self.send(
                self._coordinator,
                ResetJoinMessage(epoch=self.epoch, reg=self.reg.copy()),
            )
            return  # normal gossip is pointless during the reset window
        if self._pending_commit is not None:
            # Coordinator only: re-broadcast the commit until all acked.
            if len(self._commit_acks) >= self.config.n:
                self._pending_commit = None
                self._commit_acks = set()
            else:
                self.broadcast(self._pending_commit, include_self=False)
        await super().do_forever_iteration()

    def _enter_reset(self) -> None:
        self.resetting = True
        self._join_votes = {self.node_id: self.reg.copy()}
        if self.obs is not None:
            self.obs.reset_invocations += 1

    # -- reset protocol handlers ----------------------------------------------------------

    def _on_reset_alert(self, sender: int, message: ResetAlertMessage) -> None:
        if message.epoch == self.epoch and not self.resetting:
            self._enter_reset()

    def _on_reset_join(self, sender: int, message: ResetJoinMessage) -> None:
        if self.node_id != self._coordinator or message.epoch != self.epoch:
            return
        if not self.resetting:
            self._enter_reset()
        self._join_votes[sender] = message.reg
        if len(self._join_votes) >= self.config.n:
            merged = RegisterArray(self.config.n)
            for vote in self._join_votes.values():
                merged.merge_from(vote)
            commit = ResetCommitMessage(new_epoch=self.epoch + 1, values=merged)
            self._pending_commit = commit
            self._commit_acks = {self.node_id}
            self._apply_commit(commit)
            self.broadcast(commit, include_self=False)

    def _on_reset_commit(self, sender: int, message: ResetCommitMessage) -> None:
        if message.new_epoch == self.epoch + 1 and (
            self.resetting or self._max_local_index() >= self.config.max_int
        ):
            self._apply_commit(message)
        if message.new_epoch == self.epoch:
            # Already applied (duplicate commit): just re-acknowledge.
            self.send(sender, ResetCommitAckMessage(new_epoch=message.new_epoch))

    def _on_reset_commit_ack(
        self, sender: int, message: ResetCommitAckMessage
    ) -> None:
        if message.new_epoch == self.epoch:
            self._commit_acks.add(sender)

    def _apply_commit(self, commit: ResetCommitMessage) -> None:
        """Step 2: indices restart at 0; register values survive."""
        self._apply_index_reset(commit.values)
        self.epoch = commit.new_epoch
        self.resetting = False
        self._join_votes = {}
        self.resets_completed += 1

    # -- abortable operations --------------------------------------------------------------

    async def write(self, value: Any) -> int:
        return await self._abortable(super().write(value), "write")

    async def snapshot(self) -> SnapshotResult:
        return await self._abortable(super().snapshot(), "snapshot")

    async def _abortable(self, operation, name: str) -> Any:
        """Run an operation, aborting it if a global reset intervenes.

        Operations invoked during a reset are rejected immediately; an
        epoch change mid-operation cancels it.  Both abort paths raise
        :class:`ResetInProgressError`, which the paper's criteria allow
        for the bounded number of operations caught by the seldom reset.
        """
        if self.resetting:
            operation.close()
            raise ResetInProgressError(
                f"node {self.node_id}: global reset in progress"
            )
        epoch_at_start = self.epoch
        task = self.kernel.create_task(
            operation, name=f"node{self.node_id}.{name}"
        )
        poll = self.config.retransmit_interval
        while not task.done():
            if self.resetting or self.epoch != epoch_at_start:
                task.cancel()
                raise ResetInProgressError(
                    f"node {self.node_id}: {name} aborted by global reset"
                )
            await self.kernel.first_of(
                task, timeout=poll, cancel_on_timeout=False
            )
        return task.result()


class BoundedSelfStabilizingNonBlocking(
    _BoundedCounterMixin, SelfStabilizingNonBlocking
):
    """Algorithm 1 with bounded operation indices (MAXINT + global reset)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._install_reset_handlers()


class BoundedSelfStabilizingAlwaysTerminating(
    _BoundedCounterMixin, SelfStabilizingAlwaysTerminating
):
    """Algorithm 3 with bounded operation indices (MAXINT + global reset).

    On top of the Algorithm 1 machinery, the reset also restarts the
    snapshot-task indices (``sns``/``ssn``) and clears the pending-task
    table: pre-reset tasks are among the aborted operations the criteria
    permit, and their initiators observe the abort through the epoch
    change.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._install_reset_handlers()

    def _max_local_index(self) -> int:
        indices = [self.ts, self.ssn, self.sns, self.reg.max_timestamp()]
        indices.extend(task.sns for task in self.pnd_tsk)
        return max(indices)

    def _apply_index_reset(self, values: RegisterArray) -> None:
        super()._apply_index_reset(values)
        self.sns = 0
        self.pnd_tsk = [PendingTask() for _ in range(self.config.n)]
        self._notify()
