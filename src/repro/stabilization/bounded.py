"""Bounded-counter variants of Algorithms 1 and 3 (paper Section 5).

Wraps the self-stabilizing algorithms with the MAXINT → global-reset
transformation:

* every algorithm message travels inside an :class:`EpochEnvelope`;
  envelopes from other epochs are dropped, so stale pre-reset indices
  cannot re-poison a reset node;
* when any local operation index reaches ``config.max_int`` the node
  raises a ``RESET_ALERT``, stops admitting operations, and votes its
  maximal state in a ``RESET_JOIN``;
* the commit is decided by the self-stabilizing consensus layer
  (:mod:`repro.consensus`): every node that has collected a majority of
  join votes proposes the pointwise join of those votes for the
  instance ``("reset", epoch)``, and the decided merge is installed —
  indices restart at 0, register *values* survive.  A majority merge
  suffices because a completed write reached a majority of registers,
  so quorum intersection puts its value in every majority's join.  The
  reset therefore terminates despite any minority of crashes — in
  particular the crash of the PR-5 sketch's fixed coordinator, which is
  still available as ``config.reset_mode = "coordinator"`` for the
  regression tests and the E20 comparison;
* operations invoked or in flight during the reset window abort with
  :class:`~repro.errors.ResetInProgressError` — the bounded abort the
  paper's criteria explicitly permit during the seldom reset.

Stragglers (nodes that slept through the agreement, or whose consensus
state was corrupted into a wrong decision) catch up through commit
replay: a node that already moved to a newer epoch answers any stale
``RESET_ALERT``/``RESET_JOIN`` with its last applied
``RESET_COMMIT``, and commits for *newer* epochs are accepted while a
node is resetting or overflowed — so reset liveness never depends on
the consensus instance converging at every single node.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.core import ConsensusEndpoint
from repro.consensus.messages import (
    CsBdecMessage,
    CsDecideMessage,
    CsProposalMessage,
    CsRbAckMessage,
    CsRbDataMessage,
    CsVoteMessage,
)
from repro.core.base import SnapshotResult
from repro.core.register import RegisterArray, TimestampedValue
from repro.core.ss_always import PendingTask, SelfStabilizingAlwaysTerminating
from repro.core.ss_nonblocking import SelfStabilizingNonBlocking
from repro.errors import ResetInProgressError
from repro.net.message import Message
from repro.stabilization.reset import (
    EpochEnvelope,
    ResetAlertMessage,
    ResetCommitAckMessage,
    ResetCommitMessage,
    ResetJoinMessage,
)

__all__ = [
    "BoundedSelfStabilizingNonBlocking",
    "BoundedSelfStabilizingAlwaysTerminating",
]

#: Message types that travel *outside* the epoch envelope.  Reset
#: messages must cross epochs by design; so must the whole consensus
#: stream — the instance that decides epoch ``e + 1`` necessarily spans
#: the ``e → e + 1`` boundary.
_RESET_MESSAGE_TYPES = (
    EpochEnvelope,
    ResetAlertMessage,
    ResetJoinMessage,
    ResetCommitMessage,
    ResetCommitAckMessage,
    CsRbDataMessage,
    CsRbAckMessage,
    CsProposalMessage,
    CsVoteMessage,
    CsBdecMessage,
    CsDecideMessage,
)


def _reset_validator(expected_epoch: int, n: int):
    """Well-formedness check for a reset decision ``(new_epoch, values)``.

    Installed as the consensus instance's validator, so a transiently
    corrupted proposal (or decided value) is purged by the consensus
    layer's healing instead of being installed as the next epoch.  The
    validator is *code*, not state — corruption cannot reach it.
    """

    def validate(value: Any) -> bool:
        if not isinstance(value, tuple) or len(value) != 2:
            return False
        new_epoch, values = value
        if not isinstance(new_epoch, int) or new_epoch != expected_epoch:
            return False
        if not isinstance(values, RegisterArray):
            return False
        try:
            entries = list(values)
        except Exception:  # noqa: BLE001 - corrupt payloads iterate badly
            return False
        return len(entries) == n and all(
            isinstance(entry, TimestampedValue) for entry in entries
        )

    return validate


class _BoundedCounterMixin:
    """The MAXINT/epoch/global-reset machinery shared by both variants.

    Subclasses provide :meth:`_max_local_index` (overflow detection) and
    :meth:`_apply_index_reset` (zero the indices, keep the values).
    """

    def initialize_state(self) -> None:
        super().initialize_state()
        self.epoch: int = 0
        self.resetting: bool = False
        self.resets_completed: int = 0
        self._join_votes: dict[int, RegisterArray] = {}
        self._commit_acks: set[int] = set()
        self._pending_commit: ResetCommitMessage | None = None
        self._last_commit: ResetCommitMessage | None = None
        self._reset_proposed: bool = False
        endpoint = getattr(self, "consensus", None)
        if isinstance(endpoint, ConsensusEndpoint):
            # Detectable restart: consensus instance state is volatile.
            endpoint.reinitialize()

    def _install_reset_handlers(self) -> None:
        self.register_handler(ResetAlertMessage.KIND, self._on_reset_alert)
        self.register_handler(ResetJoinMessage.KIND, self._on_reset_join)
        self.register_handler(ResetCommitMessage.KIND, self._on_reset_commit)
        self.register_handler(
            ResetCommitAckMessage.KIND, self._on_reset_commit_ack
        )
        if self.config.reset_mode == "consensus":
            ConsensusEndpoint.ensure(self).add_listener(
                self._on_consensus_decide
            )

    # -- variant hooks ---------------------------------------------------------

    def _max_local_index(self) -> int:
        """The largest operation index anywhere in this node's state."""
        return max(self.ts, self.ssn, self.reg.max_timestamp())

    def _apply_index_reset(self, values: RegisterArray) -> None:
        """Install the agreed values with all indices back at 0."""
        for k in range(self.config.n):
            self.reg[k] = TimestampedValue(0, values[k].value)
        self.ts = 0
        self.ssn = 0

    # -- epoch envelope ------------------------------------------------------------

    def send(self, dst: int, message: Message) -> None:
        """Wrap algorithm traffic in the current epoch; reset traffic is bare."""
        if isinstance(message, _RESET_MESSAGE_TYPES):
            super().send(dst, message)
        else:
            super().send(dst, EpochEnvelope(epoch=self.epoch, inner=message))

    def deliver(self, sender: int, message: Message) -> None:
        """Unwrap envelopes, dropping those from other epochs.

        A skewed envelope is also the epoch *catch-up* signal.  A node
        that restarts (or sleeps through a reset) wakes up in an old
        epoch; without catch-up it would drop every peer's traffic and
        peers would drop its own — a permanent wedge.  So: traffic from
        a behind sender is answered with the commit that ended its
        epoch, and traffic from an ahead sender triggers a bare alert
        carrying our stale epoch, which that sender answers the same
        way (see :meth:`_on_reset_alert` / :meth:`_replay_commit`).
        """
        if isinstance(message, EpochEnvelope):
            if self.crashed:
                return
            epoch = message.epoch
            if epoch == self.epoch:
                super().deliver(sender, message.inner)
            elif isinstance(epoch, int) and epoch < self.epoch:
                self._replay_commit(sender, epoch)
            elif isinstance(epoch, int) and not self.resetting:
                self.send(sender, ResetAlertMessage(epoch=self.epoch))
            return
        super().deliver(sender, message)

    # -- the reset do-forever ----------------------------------------------------------

    @property
    def _coordinator(self) -> int:
        return 0

    async def do_forever_iteration(self) -> None:
        if not self.resetting and self._max_local_index() >= self.config.max_int:
            self._enter_reset()
        if self.resetting:
            # Step 1: alert everyone and vote the maximal local state.
            self.broadcast(
                ResetAlertMessage(epoch=self.epoch), include_self=False
            )
            join = ResetJoinMessage(epoch=self.epoch, reg=self.reg.copy())
            if self.config.reset_mode == "coordinator":
                self.send(self._coordinator, join)
            else:
                # Step 2 (consensus): votes go to everyone, so *any*
                # majority-holder can propose the merge — no single
                # node's survival is load-bearing.
                self.broadcast(join, include_self=False)
                self._maybe_propose_reset()
            return  # normal gossip is pointless during the reset window
        if self._pending_commit is not None:
            # Coordinator only: re-broadcast the commit until all acked.
            if len(self._commit_acks) >= self.config.n:
                self._pending_commit = None
                self._commit_acks = set()
            else:
                self.broadcast(self._pending_commit, include_self=False)
        await super().do_forever_iteration()

    def _enter_reset(self) -> None:
        self.resetting = True
        self._reset_proposed = False
        self._join_votes = {self.node_id: self.reg.copy()}
        if self.obs is not None:
            self.obs.reset_invocations += 1

    def _maybe_propose_reset(self) -> None:
        """Propose the join of a majority of votes, once per reset."""
        if self._reset_proposed:
            return
        if len(self._join_votes) < self.config.majority:
            return
        merged = RegisterArray(self.config.n)
        for vote in self._join_votes.values():
            merged.merge_from(vote)
        self._reset_proposed = True
        self.consensus.submit(
            ("reset", self.epoch),
            (self.epoch + 1, merged),
            validator=_reset_validator(self.epoch + 1, self.config.n),
        )

    def _on_consensus_decide(self, tag: tuple, value: Any) -> None:
        """Install a consensus-decided reset commit (listener callback)."""
        if not isinstance(tag, tuple) or len(tag) != 2 or tag[0] != "reset":
            return  # some other layer's instance on the shared endpoint
        if tag[1] != self.epoch:
            return  # stale or future epoch; commit replay covers stragglers
        if not _reset_validator(self.epoch + 1, self.config.n)(value):
            return  # corrupt decision; never install it
        commit = ResetCommitMessage(new_epoch=value[0], values=value[1])
        self._apply_commit(commit)

    # -- reset protocol handlers ----------------------------------------------------------

    def _replay_commit(self, sender: int, stale_epoch: int) -> None:
        """Answer a stale reset message with the commit that ended it."""
        commit = self._last_commit
        if commit is not None and stale_epoch < self.epoch:
            self.send(sender, commit)

    def _on_reset_alert(self, sender: int, message: ResetAlertMessage) -> None:
        if message.epoch == self.epoch and not self.resetting:
            self._enter_reset()
        elif message.epoch < self.epoch:
            self._replay_commit(sender, message.epoch)

    def _on_reset_join(self, sender: int, message: ResetJoinMessage) -> None:
        if self.config.reset_mode == "coordinator":
            if self.node_id != self._coordinator or message.epoch != self.epoch:
                return
            if not self.resetting:
                self._enter_reset()
            self._join_votes[sender] = message.reg
            if len(self._join_votes) >= self.config.n:
                merged = RegisterArray(self.config.n)
                for vote in self._join_votes.values():
                    merged.merge_from(vote)
                commit = ResetCommitMessage(
                    new_epoch=self.epoch + 1, values=merged
                )
                self._pending_commit = commit
                self._commit_acks = {self.node_id}
                self._apply_commit(commit)
                self.broadcast(commit, include_self=False)
            return
        if message.epoch < self.epoch:
            self._replay_commit(sender, message.epoch)
            return
        if message.epoch != self.epoch:
            return
        if not self.resetting:
            self._enter_reset()
        self._join_votes[sender] = message.reg
        self._maybe_propose_reset()

    def _commit_well_formed(self, message: ResetCommitMessage) -> bool:
        """Shape check before installing a commit we did not decide."""
        if not isinstance(message.new_epoch, int) or message.new_epoch <= 0:
            return False
        values = message.values
        if not isinstance(values, RegisterArray):
            return False
        try:
            entries = list(values)
        except Exception:  # noqa: BLE001 - corrupt payloads iterate badly
            return False
        return len(entries) == self.config.n and all(
            isinstance(entry, TimestampedValue) for entry in entries
        )

    def _on_reset_commit(self, sender: int, message: ResetCommitMessage) -> None:
        if self.config.reset_mode == "coordinator":
            accept = message.new_epoch == self.epoch + 1 and (
                self.resetting
                or self._max_local_index() >= self.config.max_int
            )
        else:
            # Commit replay may skip epochs for a long-partitioned or
            # restarted straggler; every replayed commit was
            # consensus-decided, so a well-formed newer commit is
            # always installable — this is what re-synchronizes a node
            # that slept through the reset entirely (it is not
            # ``resetting`` and its fresh indices never overflow).
            accept = message.new_epoch > self.epoch and (
                self._commit_well_formed(message)
            )
        if accept:
            self._apply_commit(message)
        if message.new_epoch == self.epoch:
            # Already applied (duplicate commit): just re-acknowledge.
            self.send(sender, ResetCommitAckMessage(new_epoch=message.new_epoch))

    def _on_reset_commit_ack(
        self, sender: int, message: ResetCommitAckMessage
    ) -> None:
        if message.new_epoch == self.epoch:
            self._commit_acks.add(sender)

    def _apply_commit(self, commit: ResetCommitMessage) -> None:
        """Step 2: indices restart at 0; register values survive."""
        self._apply_index_reset(commit.values)
        self.epoch = commit.new_epoch
        self.resetting = False
        self._reset_proposed = False
        self._join_votes = {}
        self._last_commit = commit
        self.resets_completed += 1

    # -- abortable operations --------------------------------------------------------------

    async def write(self, value: Any) -> int:
        return await self._abortable(super().write(value), "write")

    async def snapshot(self) -> SnapshotResult:
        return await self._abortable(super().snapshot(), "snapshot")

    async def _abortable(self, operation, name: str) -> Any:
        """Run an operation, aborting it if a global reset intervenes.

        Operations invoked during a reset are rejected immediately; an
        epoch change mid-operation cancels it.  Both abort paths raise
        :class:`ResetInProgressError`, which the paper's criteria allow
        for the bounded number of operations caught by the seldom reset.
        """
        if self.resetting:
            operation.close()
            raise ResetInProgressError(
                f"node {self.node_id}: global reset in progress"
            )
        epoch_at_start = self.epoch
        task = self.kernel.create_task(
            operation, name=f"node{self.node_id}.{name}"
        )
        poll = self.config.retransmit_interval
        while not task.done():
            if self.resetting or self.epoch != epoch_at_start:
                task.cancel()
                raise ResetInProgressError(
                    f"node {self.node_id}: {name} aborted by global reset"
                )
            await self.kernel.first_of(
                task, timeout=poll, cancel_on_timeout=False
            )
        return task.result()


class BoundedSelfStabilizingNonBlocking(
    _BoundedCounterMixin, SelfStabilizingNonBlocking
):
    """Algorithm 1 with bounded operation indices (MAXINT + global reset)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._install_reset_handlers()


class BoundedSelfStabilizingAlwaysTerminating(
    _BoundedCounterMixin, SelfStabilizingAlwaysTerminating
):
    """Algorithm 3 with bounded operation indices (MAXINT + global reset).

    On top of the Algorithm 1 machinery, the reset also restarts the
    snapshot-task indices (``sns``/``ssn``) and clears the pending-task
    table: pre-reset tasks are among the aborted operations the criteria
    permit, and their initiators observe the abort through the epoch
    change.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._install_reset_handlers()

    def _max_local_index(self) -> int:
        indices = [self.ts, self.ssn, self.sns, self.reg.max_timestamp()]
        indices.extend(task.sns for task in self.pnd_tsk)
        return max(indices)

    def _apply_index_reset(self, values: RegisterArray) -> None:
        super()._apply_index_reset(values)
        self.sns = 0
        self.pnd_tsk = [PendingTask() for _ in range(self.config.n)]
        self._notify()
