"""Bounded counters and the consensus-based global reset (Section 5)."""

from repro.stabilization.bounded import (
    BoundedSelfStabilizingAlwaysTerminating,
    BoundedSelfStabilizingNonBlocking,
)
from repro.stabilization.reset import (
    EpochEnvelope,
    ResetAlertMessage,
    ResetCommitAckMessage,
    ResetCommitMessage,
    ResetJoinMessage,
)

__all__ = [
    "BoundedSelfStabilizingAlwaysTerminating",
    "BoundedSelfStabilizingNonBlocking",
    "EpochEnvelope",
    "ResetAlertMessage",
    "ResetCommitAckMessage",
    "ResetCommitMessage",
    "ResetJoinMessage",
]
