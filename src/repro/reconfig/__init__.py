"""Reconfiguration: the paper's stated extension (state transfer core)."""

from repro.reconfig.migration import ReconfigurationReport, reconfigure

__all__ = ["ReconfigurationReport", "reconfigure"]
