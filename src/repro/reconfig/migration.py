"""Reconfiguration: move a snapshot object to a new cluster configuration.

The paper's discussion points to its full (CoRR) version for "how to
extend our solutions to reconfigurable ones".  This module implements the
state-transfer core of that extension, under the same *seldom fairness*
assumption the Section-5 global reset already relies on (reconfiguration,
like counter overflow, is a rare administrative event):

1. **Quiesce** — writes on the old configuration are fenced: every old
   node's step gate is closed for writers by crashing is *not* needed;
   instead the handoff takes an atomic snapshot, which linearizes the
   transfer point after every completed write.
2. **Collect** — one old node takes a snapshot(); its vector clock is the
   transfer point.  Because the snapshot is atomic, no completed write is
   lost and no partial write is duplicated.
3. **Install** — a new cluster (possibly different size, channel model,
   δ, or even algorithm) is built on the *same* kernel; every new node's
   register buffer is seeded with the transferred entries, timestamps
   included, so per-writer SWMR ordering continues seamlessly for nodes
   present in both configurations.
4. **Retire** — the old configuration's do-forever loops are stopped.

Entry mapping is by node id: entry *k* of the old object becomes entry
*k* of the new one.  Growing the cluster adds fresh ⊥ entries; shrinking
it drops the trailing writers' registers (the caller is warned via the
return value's ``dropped`` list).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ClusterConfig
from repro.core.base import SnapshotResult
from repro.backend.sim import SimBackend
from repro.core.register import TimestampedValue
from repro.errors import ConfigurationError

__all__ = ["ReconfigurationReport", "reconfigure"]


@dataclass(frozen=True, slots=True)
class ReconfigurationReport:
    """Outcome of a configuration change."""

    new_cluster: SimBackend
    transfer_point: SnapshotResult
    carried_entries: int
    dropped: tuple[int, ...]


async def reconfigure(
    old_cluster: SimBackend,
    new_config: ClusterConfig,
    algorithm: str | type | None = None,
    collector_node: int = 0,
) -> ReconfigurationReport:
    """Transfer the snapshot object onto a new configuration.

    Parameters
    ----------
    old_cluster:
        The running configuration; it is stopped once the transfer
        completes.
    new_config:
        Configuration of the successor cluster (any size ≥ 2).
    algorithm:
        Algorithm for the successor (defaults to the old cluster's).
    collector_node:
        Old node that takes the transfer-point snapshot.

    Returns a :class:`ReconfigurationReport`; the new cluster is started
    and ready for operations.
    """
    if old_cluster.processes[collector_node].crashed:
        raise ConfigurationError(
            f"collector node {collector_node} is crashed; pick a live node"
        )
    # Steps 1–2: the atomic snapshot is the linearized transfer point.
    transfer_point = await old_cluster.snapshot(collector_node)

    # Step 3: build the successor on the same kernel/timeline.
    new_cluster = SimBackend(
        algorithm if algorithm is not None else old_cluster.algorithm_name,
        new_config,
        start=False,
        kernel=old_cluster.kernel,
    )
    old_n = len(transfer_point.values)
    carried = 0
    for k in range(min(old_n, new_config.n)):
        ts = transfer_point.vector_clock[k]
        if ts == 0:
            continue
        entry = TimestampedValue(ts, transfer_point.values[k])
        for process in new_cluster.processes:
            process.reg[k] = entry
        # The writer itself must continue its timestamp sequence.
        new_cluster.processes[k].ts = max(new_cluster.processes[k].ts, ts)
        carried += 1
    dropped = tuple(
        k
        for k in range(new_config.n, old_n)
        if transfer_point.vector_clock[k] > 0
    )

    # Step 4: retire the old configuration, start the new one.
    old_cluster.stop()
    new_cluster.start()
    return ReconfigurationReport(
        new_cluster=new_cluster,
        transfer_point=transfer_point,
        carried_entries=carried,
        dropped=dropped,
    )
