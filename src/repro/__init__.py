"""Self-stabilizing snapshot objects for asynchronous failure-prone systems.

A reproduction of Georgiou, Lundström & Schiller (PODC 2019): linearizable
snapshot objects emulated over asynchronous message passing, tolerating
node crashes, message loss/duplication/reordering, *and* transient faults
(arbitrary state corruption), with bounded-time recovery.

Quickstart::

    from repro import SnapshotClient

    client = SnapshotClient.local(shards=2)
    client.write_sync("greeting", b"hello")
    cut = client.snapshot_sync()
    print(dict(cut.items()))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim reproduction index.
"""

from repro.config import UNBOUNDED_DELTA, ChannelConfig, ClusterConfig
from repro.core import (
    ALGORITHMS,
    DgfrAlwaysTerminating,
    DgfrNonBlocking,
    RegisterArray,
    SelfStabilizingAlwaysTerminating,
    SelfStabilizingNonBlocking,
    SnapshotResult,
    TimestampedValue,
)
from repro.core.cluster import register_algorithm

# After repro.core: the backend package reaches back through the wiring
# layers (analysis, net), which must be fully initialized first.
from repro.backend.base import backend_names, create_backend
from repro.backend.sim import SimBackend
from repro.client import SnapshotClient
from repro.errors import ReproError
from repro.stabilization import (
    BoundedSelfStabilizingAlwaysTerminating,
    BoundedSelfStabilizingNonBlocking,
)
from repro.stacked import StackedSnapshot

register_algorithm("stacked", StackedSnapshot)
register_algorithm("bounded-ss-nonblocking", BoundedSelfStabilizingNonBlocking)
register_algorithm(
    "bounded-ss-always", BoundedSelfStabilizingAlwaysTerminating
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "ChannelConfig",
    "ClusterConfig",
    "DgfrAlwaysTerminating",
    "DgfrNonBlocking",
    "RegisterArray",
    "ReproError",
    "SelfStabilizingAlwaysTerminating",
    "SelfStabilizingNonBlocking",
    "SimBackend",
    "SnapshotClient",
    "SnapshotResult",
    "TimestampedValue",
    "UNBOUNDED_DELTA",
    "__version__",
    "backend_names",
    "create_backend",
]
