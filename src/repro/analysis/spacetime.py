"""ASCII space-time diagrams from message traces.

Renders a :class:`~repro.analysis.trace.MessageTrace` as a diagram in the
style of the paper's Figures 1–3: one column (lane) per node, time
flowing downward, each message drawn as an arrow row from its sender's
lane to its receiver's lane, labelled with the message kind.  Operation
boundaries inserted with :meth:`MessageTrace.mark` appear as bracketed
annotations in the owning lane.

Example output (write at p0, then a snapshot at p2)::

    time     p0        p1        p2        p3
    ----- --------- --------- --------- ---------
      0.0 [write
      0.0 ●──WRITE─▶
      0.0 ●──────────WRITE───▶
      ...
"""

from __future__ import annotations

from repro.analysis.trace import MessageTrace, TraceEvent

__all__ = ["render_spacetime"]

#: Width of each node lane in characters.
_LANE = 10


def _arrow_row(n: int, event: TraceEvent) -> str:
    """One diagram row for a send/deliver arrow between two lanes."""
    width = n * _LANE
    row = [" "] * width
    src_center = event.src * _LANE + _LANE // 2
    dst_center = event.dst * _LANE + _LANE // 2
    left, right = sorted((src_center, dst_center))
    for position in range(left, right + 1):
        row[position] = "─"
    row[src_center] = "●"
    row[dst_center] = "▶" if dst_center > src_center else "◀"
    # Overlay the message kind along the arrow shaft.
    label = event.kind
    shaft = right - left - 2
    if shaft >= len(label) > 0:
        start = (left + right - len(label)) // 2 + 1
        for offset, char in enumerate(label):
            row[start + offset] = char
    prefix = "…" if event.event == "deliver" else " "
    return prefix + "".join(row).rstrip()


def _mark_row(n: int, event: TraceEvent) -> str:
    center = event.src * _LANE + 1
    label = f"[{event.kind}]"
    row = [" "] * max(n * _LANE, center + len(label))
    for offset, char in enumerate(label):
        row[center + offset] = char
    return " " + "".join(row).rstrip()


def render_spacetime(
    trace: MessageTrace,
    n: int,
    max_rows: int = 60,
    include_deliveries: bool = False,
    title: str = "",
) -> str:
    """Render the trace as an ASCII space-time diagram.

    Parameters
    ----------
    trace:
        Recorded events (sends, deliveries, marks).
    n:
        Number of node lanes.
    max_rows:
        Truncate long traces after this many rows (a summary line notes
        how many events were elided).
    include_deliveries:
        Also draw a (dotted-prefix) row for each delivery; off by default
        because send rows already show the arrow's endpoints.
    """
    header_lanes = "".join(f"p{k}".center(_LANE) for k in range(n))
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'time':>7} {header_lanes}")
    lines.append(f"{'-' * 7} {'-' * (n * _LANE)}")
    rows = 0
    elided = 0
    for event in trace:
        if event.event == "deliver" and not include_deliveries:
            continue
        if rows >= max_rows:
            elided += 1
            continue
        if event.event == "mark":
            body = _mark_row(n, event)
        else:
            body = _arrow_row(n, event)
        lines.append(f"{event.time:7.1f}{body}")
        rows += 1
    if elided:
        lines.append(f"        … {elided} more events elided …")
    return "\n".join(lines)
