"""Operation-history recording for linearizability checking.

Every operation the harness invokes is recorded as an invocation event
(with the simulated time) and a response event.  The resulting history —
a set of real-time intervals with arguments and results — is exactly the
object the linearizability checkers in
:mod:`repro.analysis.linearizability` consume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import HistoryError

__all__ = ["OperationRecord", "HistoryRecorder", "WRITE", "SNAPSHOT"]

WRITE = "write"
SNAPSHOT = "snapshot"


@dataclass(slots=True)
class OperationRecord:
    """One operation's lifetime in the history.

    Attributes
    ----------
    op_id:
        Unique id assigned at invocation.
    node_id:
        The invoking node.
    kind:
        ``"write"`` or ``"snapshot"``.
    argument:
        The written value (writes only).
    invoked_at / responded_at:
        Simulated times; ``responded_at`` is ``None`` while pending.
    result:
        The write's timestamp index, or the snapshot's
        :class:`~repro.core.base.SnapshotResult`.
    aborted:
        True when the operation failed without taking effect visibly
        (e.g. rejected by a global reset); aborted operations are ignored
        by the linearizability checkers.
    meta:
        Free-form diagnostics (message counts, rounds, …).
    """

    op_id: int
    node_id: int
    kind: str
    argument: Any = None
    invoked_at: float = 0.0
    responded_at: float | None = None
    result: Any = None
    aborted: bool = False
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """Whether the operation has responded."""
        return self.responded_at is not None

    def precedes(self, other: "OperationRecord") -> bool:
        """Real-time order: this op responded before the other was invoked."""
        return (
            self.responded_at is not None
            and self.responded_at < other.invoked_at
        )


class HistoryRecorder:
    """Collects operation records during a run."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._records: dict[int, OperationRecord] = {}

    def invoke(
        self, node_id: int, kind: str, argument: Any = None, now: float = 0.0
    ) -> int:
        """Record an invocation; returns the operation id."""
        if kind not in (WRITE, SNAPSHOT):
            raise HistoryError(f"unknown operation kind {kind!r}")
        op_id = next(self._ids)
        self._records[op_id] = OperationRecord(
            op_id=op_id,
            node_id=node_id,
            kind=kind,
            argument=argument,
            invoked_at=now,
        )
        return op_id

    def respond(self, op_id: int, result: Any = None, now: float = 0.0) -> None:
        """Record an operation's response."""
        record = self._records.get(op_id)
        if record is None:
            raise HistoryError(f"response for unknown operation {op_id}")
        if record.completed:
            raise HistoryError(f"operation {op_id} already responded")
        record.responded_at = now
        record.result = result

    def abort(self, op_id: int, now: float = 0.0) -> None:
        """Mark an operation as aborted (e.g. by a global reset)."""
        record = self._records.get(op_id)
        if record is None:
            raise HistoryError(f"abort for unknown operation {op_id}")
        if record.completed:
            raise HistoryError(f"operation {op_id} already responded")
        record.responded_at = now
        record.aborted = True

    def annotate(self, op_id: int, **meta: Any) -> None:
        """Attach diagnostics to an operation record."""
        record = self._records.get(op_id)
        if record is None:
            raise HistoryError(f"annotation for unknown operation {op_id}")
        record.meta.update(meta)

    # -- views ---------------------------------------------------------------

    def records(self, completed_only: bool = False) -> list[OperationRecord]:
        """All records, invocation-ordered."""
        records = sorted(self._records.values(), key=lambda r: r.op_id)
        if completed_only:
            records = [r for r in records if r.completed]
        return records

    def writes(self, completed_only: bool = False) -> list[OperationRecord]:
        """The write records."""
        return [r for r in self.records(completed_only) if r.kind == WRITE]

    def snapshots(self, completed_only: bool = False) -> list[OperationRecord]:
        """The snapshot records."""
        return [r for r in self.records(completed_only) if r.kind == SNAPSHOT]

    def pending(self) -> list[OperationRecord]:
        """Operations that never responded (e.g. the invoker crashed)."""
        return [r for r in self.records() if not r.completed]

    def __len__(self) -> int:
        return len(self._records)

    def validate_well_formed(self, sequential: bool = True) -> None:
        """Check structural sanity: per-node operations are sequential.

        The model assumes one sequential client per node; overlapping
        operations from the same node indicate harness misuse.  Pass
        ``sequential=False`` for algorithms that explicitly admit
        concurrent local clients (``CONCURRENT_CLIENTS``, the amortized
        variant) — overlap is then the intended workload shape and only
        the per-record invariants enforced at recording time apply.
        """
        if not sequential:
            return
        by_node: dict[int, list[OperationRecord]] = {}
        for record in self.records():
            by_node.setdefault(record.node_id, []).append(record)
        for node_id, records in by_node.items():
            records.sort(key=lambda r: r.invoked_at)
            for earlier, later in zip(records, records[1:]):
                if earlier.responded_at is None:
                    if earlier is not records[-1]:
                        raise HistoryError(
                            f"node {node_id}: operation {earlier.op_id} never "
                            f"responded but {later.op_id} was invoked after it"
                        )
                elif earlier.responded_at > later.invoked_at:
                    raise HistoryError(
                        f"node {node_id}: operations {earlier.op_id} and "
                        f"{later.op_id} overlap; clients must be sequential"
                    )

    def snapshot_results(self) -> list[Any]:
        """The results of all completed snapshots (SnapshotResult objects)."""
        return [r.result for r in self.snapshots(completed_only=True)]
