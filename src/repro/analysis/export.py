"""JSON export/import for histories and message traces.

Runs — especially chaos campaigns or live UDP deployments — produce
evidence you may want to analyse offline: operation histories (for
re-checking linearizability elsewhere) and message traces (for
rendering diagrams later).  This module round-trips both through plain
JSON; values that JSON cannot carry (``bytes``, tuples) are encoded
reversibly.
"""

from __future__ import annotations

import base64
import json
from typing import Any

from repro.analysis.history import HistoryRecorder, OperationRecord
from repro.analysis.trace import MessageTrace, TraceEvent
from repro.core.base import SnapshotResult
from repro.errors import HistoryError

__all__ = [
    "history_to_json",
    "history_from_json",
    "trace_to_json",
    "trace_from_json",
]


def _encode_value(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(item) for item in value]}
    if isinstance(value, SnapshotResult):
        return {
            "__snapshot__": {
                "values": [_encode_value(item) for item in value.values],
                "vector_clock": list(value.vector_clock),
            }
        }
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__bytes__" in value:
            return base64.b64decode(value["__bytes__"])
        if "__tuple__" in value:
            return tuple(_decode_value(item) for item in value["__tuple__"])
        if "__snapshot__" in value:
            inner = value["__snapshot__"]
            return SnapshotResult(
                values=tuple(_decode_value(item) for item in inner["values"]),
                vector_clock=tuple(inner["vector_clock"]),
            )
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


# -- histories ---------------------------------------------------------------------


def history_to_json(history: HistoryRecorder, indent: int | None = None) -> str:
    """Serialize a history (all records, including pending/aborted)."""
    payload = [
        {
            "op_id": record.op_id,
            "node_id": record.node_id,
            "kind": record.kind,
            "argument": _encode_value(record.argument),
            "invoked_at": record.invoked_at,
            "responded_at": record.responded_at,
            "result": _encode_value(record.result),
            "aborted": record.aborted,
            "meta": _encode_value(record.meta),
        }
        for record in history.records()
    ]
    return json.dumps(payload, indent=indent)


def history_from_json(data: str) -> list[OperationRecord]:
    """Rebuild operation records from :func:`history_to_json` output.

    Returns records directly (not a recorder): the intended use is
    feeding them to the linearizability checkers.
    """
    try:
        payload = json.loads(data)
    except json.JSONDecodeError as exc:
        raise HistoryError(f"malformed history JSON: {exc}") from exc
    records = []
    for item in payload:
        records.append(
            OperationRecord(
                op_id=item["op_id"],
                node_id=item["node_id"],
                kind=item["kind"],
                argument=_decode_value(item["argument"]),
                invoked_at=item["invoked_at"],
                responded_at=item["responded_at"],
                result=_decode_value(item["result"]),
                aborted=item.get("aborted", False),
                meta=_decode_value(item.get("meta", {})),
            )
        )
    return records


# -- traces ----------------------------------------------------------------------------


def trace_to_json(trace: MessageTrace, indent: int | None = None) -> str:
    """Serialize a message trace."""
    payload = [
        {
            "event": event.event,
            "time": event.time,
            "src": event.src,
            "dst": event.dst,
            "kind": event.kind,
        }
        for event in trace.events
    ]
    return json.dumps(payload, indent=indent)


def trace_from_json(data: str) -> MessageTrace:
    """Rebuild a trace from :func:`trace_to_json` output."""
    payload = json.loads(data)
    trace = MessageTrace()
    trace.events = [
        TraceEvent(
            event=item["event"],
            time=item["time"],
            src=item["src"],
            dst=item["dst"],
            kind=item["kind"],
        )
        for item in payload
    ]
    return trace
