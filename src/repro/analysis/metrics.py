"""Message accounting for communication-cost experiments.

The paper's claims are stated in messages and bits ("O(n) messages of
O(n·ν) bits", "O(n²) gossip messages of O(ν) bits").  The network fabric
reports every send here, tagged with the message kind, so benchmarks can
regenerate those counts.  :meth:`MetricsCollector.window` measures the
traffic attributable to one operation in a quiescent run.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ObservabilityError

__all__ = ["MetricsCollector", "MetricsSnapshot", "TrafficWindow"]


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """An immutable point-in-time copy of the collector's counters."""

    messages_by_kind: dict[str, int]
    bytes_by_kind: dict[str, int]
    dropped_loss: int
    dropped_capacity: int
    duplicated: int
    #: Transport batching (``ChannelConfig.batch_window > 1``): wire
    #: bundles emitted, and how many logical messages rode inside them.
    #: ``messages_by_kind`` keeps counting the *inner* messages — the
    #: paper's complexity claims are per logical message — so these two
    #: measure the coalescing on top, not instead.
    batches: int = 0
    batched_messages: int = 0

    @property
    def total_messages(self) -> int:
        """Total network messages sent (loopback self-delivery excluded)."""
        return sum(self.messages_by_kind.values())

    @property
    def total_bytes(self) -> int:
        """Total payload bytes sent over the network."""
        return sum(self.bytes_by_kind.values())

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counter-wise difference ``self - earlier``."""
        return MetricsSnapshot(
            messages_by_kind={
                kind: count - earlier.messages_by_kind.get(kind, 0)
                for kind, count in self.messages_by_kind.items()
                if count - earlier.messages_by_kind.get(kind, 0)
            },
            bytes_by_kind={
                kind: count - earlier.bytes_by_kind.get(kind, 0)
                for kind, count in self.bytes_by_kind.items()
                if count - earlier.bytes_by_kind.get(kind, 0)
            },
            dropped_loss=self.dropped_loss - earlier.dropped_loss,
            dropped_capacity=self.dropped_capacity - earlier.dropped_capacity,
            duplicated=self.duplicated - earlier.duplicated,
            batches=self.batches - earlier.batches,
            batched_messages=self.batched_messages - earlier.batched_messages,
        )

    def messages(self, *kinds: str) -> int:
        """Message count summed over the given kinds (all kinds if none)."""
        if not kinds:
            return self.total_messages
        return sum(self.messages_by_kind.get(kind, 0) for kind in kinds)

    def bytes_for(self, *kinds: str) -> int:
        """Byte count summed over the given kinds (all kinds if none)."""
        if not kinds:
            return self.total_bytes
        return sum(self.bytes_by_kind.get(kind, 0) for kind in kinds)


class TrafficWindow:
    """Mutable holder filled in when a :meth:`MetricsCollector.window` closes."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats: MetricsSnapshot | None = None

    @property
    def closed(self) -> bool:
        """Whether the window has closed (i.e. :attr:`stats` is readable)."""
        return self._stats is not None

    @property
    def stats(self) -> MetricsSnapshot:
        """The traffic measured while the window was open.

        Only available once the ``with metrics.window()`` block has exited;
        reading it earlier is always a bug (the diff has not been taken yet).
        """
        if self._stats is None:
            raise ObservabilityError(
                "TrafficWindow.stats read before the window closed; the "
                "snapshot diff is taken when the `with metrics.window()` "
                "block exits"
            )
        return self._stats


class MetricsCollector:
    """Accumulates per-kind message counts and byte volumes.

    One collector serves a whole cluster; the network fabric calls
    :meth:`record_send` on every message that actually enters a channel
    (i.e. after loopback short-circuiting, before loss is applied — a lost
    message was still *sent*, which is what the complexity claims count).
    """

    __slots__ = (
        "_messages",
        "_bytes",
        "_per_sender",
        "_sender_totals",
        "_enabled",
        "dropped_loss",
        "dropped_capacity",
        "duplicated",
        "batches",
        "batched_messages",
    )

    def __init__(self, enabled: bool = True) -> None:
        self._messages: Counter[str] = Counter()
        self._bytes: Counter[str] = Counter()
        self._per_sender: Counter[tuple[int, str]] = Counter()
        self._sender_totals: Counter[int] = Counter()
        #: Fast-path switch, read directly by :meth:`Network.send
        #: <repro.net.network.Network.send>`: while False, the network
        #: skips recording *and* the per-message ``wire_size`` walk, making
        #: an unobserved run's accounting cost a single attribute test.
        self._enabled = enabled
        self.dropped_loss = 0
        self.dropped_capacity = 0
        self.duplicated = 0
        self.batches = 0
        self.batched_messages = 0

    @property
    def enabled(self) -> bool:
        """Whether sends are currently being recorded."""
        return self._enabled

    def disable(self) -> None:
        """Stop recording (counters keep their values; snapshots still work)."""
        self._enabled = False

    def enable(self) -> None:
        """Resume recording after :meth:`disable`."""
        self._enabled = True

    def record_send(self, src: int, dst: int, kind: str, size: int) -> None:
        """Account one message of ``kind`` and ``size`` bytes from ``src``.

        Honors the enabled flag here too — the network fast path checks it
        before even computing ``size``, but a direct caller must not be able
        to mutate counters while the collector is disabled.
        """
        if not self._enabled:
            return
        self._messages[kind] += 1
        self._bytes[kind] += size
        self._per_sender[(src, kind)] += 1
        self._sender_totals[src] += 1

    def record_loss(self) -> None:
        """Account a message dropped by the channel loss model."""
        self.dropped_loss += 1

    def record_capacity_drop(self) -> None:
        """Account a message dropped because the channel was full."""
        self.dropped_capacity += 1

    def record_duplication(self) -> None:
        """Account a spontaneous channel duplication."""
        self.duplicated += 1

    def record_batch(self, occupancy: int) -> None:
        """Account one wire bundle carrying ``occupancy`` logical messages."""
        self.batches += 1
        self.batched_messages += occupancy

    def sender_messages(self, src: int, kind: str | None = None) -> int:
        """Messages sent by one node, optionally restricted to a kind.

        The no-kind case reads a dedicated per-sender total, so it is O(1)
        rather than a scan over every ``(sender, kind)`` pair (this is hot
        in the E11/E12 write-throughput probes).
        """
        if kind is not None:
            return self._per_sender[(src, kind)]
        return self._sender_totals[src]

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of the current counters."""
        return MetricsSnapshot(
            messages_by_kind=dict(self._messages),
            bytes_by_kind=dict(self._bytes),
            dropped_loss=self.dropped_loss,
            dropped_capacity=self.dropped_capacity,
            duplicated=self.duplicated,
            batches=self.batches,
            batched_messages=self.batched_messages,
        )

    @contextmanager
    def window(self) -> Iterator[TrafficWindow]:
        """Measure the traffic sent while the ``with`` block executes.

        In a quiescent cluster (no concurrent operations, gossip excluded by
        kind filtering), this is the per-operation message cost the paper's
        complexity claims describe.
        """
        before = self.snapshot()
        holder = TrafficWindow()
        try:
            yield holder
        finally:
            holder._stats = self.snapshot().diff(before)
