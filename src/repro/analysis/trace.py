"""Message-trace recording for space-time diagrams and debugging.

Attaches to a :class:`~repro.net.network.Network` via its
``trace_listeners`` hook and records every send and delivery as a
:class:`TraceEvent`.  The renderer in :mod:`repro.analysis.spacetime`
turns a trace into the kind of space-time diagram the paper's Figures
1–3 draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = ["TraceEvent", "MessageTrace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One network event.

    ``event`` is ``"send"`` or ``"deliver"``; ``mark`` entries (from
    :meth:`MessageTrace.mark`) use ``"mark"`` with ``src`` as the node
    and ``kind`` as the label (e.g. ``write() invoked``).
    """

    event: str
    time: float
    src: int
    dst: int
    kind: str


class MessageTrace:
    """Records network events (and caller-inserted marks) in time order."""

    def __init__(self, network=None) -> None:
        self.events: list[TraceEvent] = []
        self._network = network
        if network is not None:
            network.trace_listeners.append(self._on_event)

    def _on_event(
        self, event: str, time: float, src: int, dst: int, kind: str
    ) -> None:
        self.events.append(TraceEvent(event, time, src, dst, kind))

    def mark(self, node: int, label: str, time: float) -> None:
        """Insert an annotation (e.g. an operation boundary) at a node."""
        self.events.append(TraceEvent("mark", time, node, node, label))

    def detach(self) -> None:
        """Stop recording."""
        if self._network is not None:
            try:
                self._network.trace_listeners.remove(self._on_event)
            except ValueError:
                pass

    # -- queries -----------------------------------------------------------------

    def sends(self, kind: str | None = None) -> list[TraceEvent]:
        """Send events, optionally filtered by message kind."""
        return [
            e
            for e in self.events
            if e.event == "send" and (kind is None or e.kind == kind)
        ]

    def deliveries(self, kind: str | None = None) -> list[TraceEvent]:
        """Delivery events, optionally filtered by message kind."""
        return [
            e
            for e in self.events
            if e.event == "deliver" and (kind is None or e.kind == kind)
        ]

    def between(self, start: float, end: float) -> "MessageTrace":
        """A sub-trace restricted to a time window."""
        sub = MessageTrace()
        sub.events = [e for e in self.events if start <= e.time <= end]
        return sub

    def filtered(self, keep: Callable[[TraceEvent], bool]) -> "MessageTrace":
        """A sub-trace containing only events accepted by ``keep``."""
        sub = MessageTrace()
        sub.events = [e for e in self.events if keep(e)]
        return sub

    def kinds(self) -> set[str]:
        """Distinct message kinds present in the trace."""
        return {e.kind for e in self.events if e.event != "mark"}

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(sorted(self.events, key=lambda e: e.time))
