"""Analysis toolkit: histories, linearizability, metrics, cycle tracking."""

from repro.analysis.cycles import CycleTracker
from repro.analysis.history import SNAPSHOT, WRITE, HistoryRecorder, OperationRecord
from repro.analysis.metrics import MetricsCollector, MetricsSnapshot

__all__ = [
    "CycleTracker",
    "HistoryRecorder",
    "MetricsCollector",
    "MetricsSnapshot",
    "OperationRecord",
    "SNAPSHOT",
    "WRITE",
]
