"""Consistency predicates from the paper's recovery theorems.

Theorem 1 (Algorithm 1) and Definition 1 / Theorem 2 (Algorithm 3) define
*consistent system states* — states in which no stale index anywhere in
the system (node variables, register entries, or in-flight messages)
exceeds its owner's authoritative counter.  The recovery experiments
(E7/E8) inject arbitrary corruption and count the asynchronous cycles
until these predicates hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.sim import SimBackend
from repro.core.register import RegisterArray

__all__ = [
    "InvariantReport",
    "ts_consistent",
    "ssn_consistent",
    "sns_consistent",
    "vc_consistent",
    "definition1_consistent",
]


@dataclass(slots=True)
class InvariantReport:
    """Which invariants hold, with diagnostics for the ones that do not."""

    ok: bool = True
    failures: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        """Record one invariant violation."""
        self.ok = False
        self.failures.append(message)

    def __bool__(self) -> bool:
        return self.ok


def _in_flight_messages(cluster: SimBackend):
    from repro.net.batch import BatchMessage

    for channel in cluster.network.channels():
        for message in channel.in_flight_messages():
            # A transport bundle is not itself protocol state; the
            # invariants apply to the messages it carries.
            if isinstance(message, BatchMessage):
                for inner in message.messages:
                    yield channel.src, channel.dst, inner
            else:
                yield channel.src, channel.dst, message


def ts_consistent(cluster: SimBackend) -> InvariantReport:
    """Definition 1(i): ``ts_i`` dominates every ts attributed to ``p_i``.

    Checks node variables (``reg_j[i].ts`` for every ``j``) and the
    register arrays and entries carried by every in-flight message.
    """
    report = InvariantReport()
    n = cluster.config.n
    own_ts = [p.ts for p in cluster.processes]
    for process in cluster.processes:
        for i in range(n):
            if process.reg[i].ts > own_ts[i]:
                report.fail(
                    f"reg_{process.node_id}[{i}].ts={process.reg[i].ts} "
                    f"> ts_{i}={own_ts[i]}"
                )
    for src, dst, message in _in_flight_messages(cluster):
        reg = getattr(message, "reg", None)
        if isinstance(reg, RegisterArray):
            for i in range(n):
                if reg[i].ts > own_ts[i]:
                    report.fail(
                        f"in-flight {message.kind} {src}->{dst}: "
                        f"reg[{i}].ts={reg[i].ts} > ts_{i}={own_ts[i]}"
                    )
        entry = getattr(message, "entry", None)
        if entry is not None and message.kind == "GOSSIP":
            # A gossip to p_dst carries p_dst's own entry.
            if entry.ts > own_ts[dst]:
                report.fail(
                    f"in-flight GOSSIP {src}->{dst}: entry.ts={entry.ts} "
                    f"> ts_{dst}={own_ts[dst]}"
                )
    return report


def ssn_consistent(cluster: SimBackend) -> InvariantReport:
    """Definition 1(ii): ``ssn_i`` dominates every ssn attributed to ``p_i``.

    The ssn fields appear in SNAPSHOT queries (tagged by the querier) and
    are echoed in SNAPSHOTack replies addressed back to the querier.
    """
    report = InvariantReport()
    own_ssn = {p.node_id: getattr(p, "ssn", 0) for p in cluster.processes}
    for src, dst, message in _in_flight_messages(cluster):
        ssn = getattr(message, "ssn", None)
        if ssn is None:
            continue
        owner = src if message.kind == "SNAPSHOT" else dst
        if ssn > own_ssn.get(owner, 0):
            report.fail(
                f"in-flight {message.kind} {src}->{dst}: ssn={ssn} "
                f"> ssn_{owner}={own_ssn.get(owner, 0)}"
            )
    return report


def sns_consistent(cluster: SimBackend) -> InvariantReport:
    """Definition 1(iii): snapshot task indices are consistent.

    ``sns_i = pndTsk_i[i].sns`` and
    ``pndTsk_j[i].sns ≤ pndTsk_i[i].sns`` for all ``i, j``.
    Only meaningful for Algorithm 3 clusters.
    """
    report = InvariantReport()
    processes = cluster.processes
    if not hasattr(processes[0], "pnd_tsk"):
        return report
    for process in processes:
        i = process.node_id
        if process.sns != process.pnd_tsk[i].sns:
            report.fail(
                f"sns_{i}={process.sns} != pndTsk_{i}[{i}].sns="
                f"{process.pnd_tsk[i].sns}"
            )
    for observer in processes:
        for owner in processes:
            i = owner.node_id
            if observer.pnd_tsk[i].sns > owner.pnd_tsk[i].sns:
                report.fail(
                    f"pndTsk_{observer.node_id}[{i}].sns="
                    f"{observer.pnd_tsk[i].sns} > pndTsk_{i}[{i}].sns="
                    f"{owner.pnd_tsk[i].sns}"
                )
    return report


def vc_consistent(cluster: SimBackend) -> InvariantReport:
    """Definition 1(iv): every stored vector clock is ⪯ the local VC."""
    report = InvariantReport()
    processes = cluster.processes
    if not hasattr(processes[0], "pnd_tsk"):
        return report
    for process in processes:
        current = process.reg.vector_clock()
        for k, task in enumerate(process.pnd_tsk):
            if task.vc is None:
                continue
            if any(s > c for s, c in zip(task.vc, current)):
                report.fail(
                    f"pndTsk_{process.node_id}[{k}].vc={task.vc} "
                    f"⋠ VC={current}"
                )
    return report


def definition1_consistent(cluster: SimBackend) -> InvariantReport:
    """All four invariants of Definition 1 combined."""
    combined = InvariantReport()
    for check in (ts_consistent, ssn_consistent, sns_consistent, vc_consistent):
        partial = check(cluster)
        if not partial.ok:
            combined.ok = False
            combined.failures.extend(partial.failures)
    return combined
