"""Asynchronous-cycle tracking (the paper's complexity clock, Section 2).

The paper measures recovery time in *asynchronous cycles*: the first cycle
of a fair execution is the shortest prefix in which every non-failing node
completes at least one full iteration of its do-forever loop (and the
round trips of the messages sent in it); the second cycle is the first
cycle of the remaining suffix, and so on.

:class:`CycleTracker` implements that definition over the iteration
notifications that :class:`~repro.net.node.Process` emits.  The gossip
messages sent by a do-forever iteration carry no replies, so iteration
completion is the cycle-relevant event; operation round trips are driven
by their own tasks and are accounted inside operations.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.net.node import Process
from repro.sim.kernel import Kernel, SimFuture

__all__ = ["CycleTracker"]


class CycleTracker:
    """Counts asynchronous cycles over a set of processes.

    Attach with :meth:`attach`; the tracker then advances
    :attr:`cycles_elapsed` whenever every currently non-crashed process
    has completed at least one do-forever iteration since the previous
    cycle boundary.
    """

    def __init__(self, kernel: Kernel, processes: Iterable[Process]) -> None:
        self._kernel = kernel
        self._processes = list(processes)
        self.cycles_elapsed = 0
        self._seen_this_cycle: set[int] = set()
        self._waiters: list[tuple[int, SimFuture]] = []
        self._boundary_listeners: list[Callable[[int], None]] = []
        for process in self._processes:
            process.add_iteration_listener(self._on_iteration)

    def _alive_ids(self) -> set[int]:
        return {p.node_id for p in self._processes if not p.crashed}

    def _on_iteration(self, node_id: int) -> None:
        self._seen_this_cycle.add(node_id)
        if self._alive_ids() <= self._seen_this_cycle:
            self.cycles_elapsed += 1
            self._seen_this_cycle.clear()
            for listener in self._boundary_listeners:
                listener(self.cycles_elapsed)
            self._release_waiters()

    def _release_waiters(self) -> None:
        still_waiting: list[tuple[int, SimFuture]] = []
        for target, future in self._waiters:
            if self.cycles_elapsed >= target and not future.done():
                future.set_result(self.cycles_elapsed)
            elif not future.done():
                still_waiting.append((target, future))
        self._waiters = still_waiting

    def add_boundary_listener(self, listener: Callable[[int], None]) -> None:
        """Call ``listener(cycle_number)`` at every cycle boundary."""
        self._boundary_listeners.append(listener)

    def reset(self) -> None:
        """Restart counting from zero (e.g. at the fault-injection instant)."""
        self.cycles_elapsed = 0
        self._seen_this_cycle.clear()

    async def wait_cycles(self, count: int) -> int:
        """Block until ``count`` more cycles have elapsed; returns the total."""
        target = self.cycles_elapsed + count
        if self.cycles_elapsed >= target:
            return self.cycles_elapsed
        future = self._kernel.create_future()
        self._waiters.append((target, future))
        return await future
