"""Linearizability checking for SWMR snapshot-object histories.

Two checkers with very different cost/completeness trade-offs:

* :func:`check_snapshot_history` — a **specialized polynomial checker**
  exploiting the SWMR snapshot semantics.  Each write by node ``i``
  carries a unique, per-writer-increasing timestamp, so a snapshot result
  is fully described by its vector clock.  The checker verifies the
  classic necessary-and-jointly-sufficient conditions: per-writer
  timestamp monotonicity, total ⪯-order (comparability) of snapshot
  vectors, real-time order among snapshots, real-time order between
  writes and snapshots in both directions, and value agreement.
* :func:`check_exhaustive` — a **Wing & Gill style exhaustive checker**
  (memoized DFS over linearization prefixes) that works directly from the
  sequential specification.  Exponential, so only for small histories;
  the property-based tests cross-validate the specialized checker
  against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

from repro.analysis.history import SNAPSHOT, WRITE, OperationRecord
from repro.errors import HistoryError

__all__ = ["CheckReport", "check_snapshot_history", "check_exhaustive"]


@dataclass(slots=True)
class CheckReport:
    """Outcome of a linearizability check."""

    ok: bool = True
    violations: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        """Record one violation."""
        self.ok = False
        self.violations.append(message)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        """Human-readable verdict."""
        if self.ok:
            return "linearizable"
        head = "\n  ".join(self.violations[:10])
        extra = len(self.violations) - 10
        tail = f"\n  … and {extra} more" if extra > 0 else ""
        return f"NOT linearizable ({len(self.violations)} violations):\n  {head}{tail}"


def _vc_leq(a: Sequence[int], b: Sequence[int]) -> bool:
    return all(x <= y for x, y in zip(a, b))


def check_snapshot_history(
    records: Iterable[OperationRecord],
    n: int,
    check_values: bool = True,
    allow_rebased_init: bool = False,
) -> CheckReport:
    """Check a completed SWMR snapshot-object history for linearizability.

    Parameters
    ----------
    records:
        Operation records; pending operations are ignored except that a
        pending write's value may legitimately appear in snapshots.
    n:
        Number of nodes (length of snapshot vectors).
    check_values:
        Also verify that snapshot values equal the written values for
        matching timestamps (disable when values are scrambled on purpose,
        e.g. right after transient-fault injection).
    allow_rebased_init:
        Accept entries with ts 0 carrying non-⊥ values.  The bounded
        variants' global reset rebases every index to 0 while register
        *values* survive, so a history window opened after a reset
        legitimately observes survivor values at ts 0.  The history must
        still not span the reset itself (per-writer timestamps restart).
    """
    report = CheckReport()
    records = list(records)
    # Aborted operations (e.g. rejected by a global reset) impose no
    # constraints: an aborted write is treated like a pending one (it may
    # or may not have taken effect); an aborted snapshot returned nothing.
    writes = [r for r in records if r.kind == WRITE and not r.aborted]
    snapshots = [
        r
        for r in records
        if r.kind == SNAPSHOT and r.completed and not r.aborted
    ]

    # 1. Per-writer timestamps: unique and increasing in invocation order.
    writes_by_node: dict[int, list[OperationRecord]] = {}
    for write in writes:
        writes_by_node.setdefault(write.node_id, []).append(write)
    write_table: dict[tuple[int, int], OperationRecord] = {}
    for node_id, node_writes in writes_by_node.items():
        node_writes.sort(key=lambda r: r.invoked_at)
        previous_ts = 0
        for write in node_writes:
            if write.result is None:
                continue  # pending write: no timestamp evidence
            ts = write.result
            if ts <= previous_ts:
                report.fail(
                    f"write ts not increasing at node {node_id}: "
                    f"{ts} after {previous_ts} (op {write.op_id})"
                )
            previous_ts = max(previous_ts, ts)
            write_table[(node_id, ts)] = write

    # 2. Snapshot structural sanity.
    for snap in snapshots:
        vc = snap.result.vector_clock
        if len(vc) != n:
            raise HistoryError(
                f"snapshot op {snap.op_id}: vector of length {len(vc)}, "
                f"expected {n}"
            )

    # 3. Snapshots must be totally ordered by ⪯ (atomicity).
    ordered = sorted(snapshots, key=lambda s: (sum(s.result.vector_clock),))
    for earlier, later in zip(ordered, ordered[1:]):
        if not _vc_leq(earlier.result.vector_clock, later.result.vector_clock):
            report.fail(
                f"snapshots {earlier.op_id} and {later.op_id} are "
                f"⪯-incomparable: {earlier.result.vector_clock} vs "
                f"{later.result.vector_clock}"
            )

    # 4. Real-time order among snapshots.
    for first in snapshots:
        for second in snapshots:
            if first.precedes(second) and not _vc_leq(
                first.result.vector_clock, second.result.vector_clock
            ):
                report.fail(
                    f"snapshot {second.op_id} (after {first.op_id} in real "
                    f"time) returned an older vector"
                )

    # 5. Real-time order between writes and snapshots.
    for write in writes:
        if write.result is None:
            continue
        ts = write.result
        node_id = write.node_id
        for snap in snapshots:
            vc = snap.result.vector_clock
            if write.precedes(snap) and vc[node_id] < ts:
                report.fail(
                    f"snapshot {snap.op_id} misses write {write.op_id} "
                    f"(node {node_id}, ts {ts}) that preceded it; "
                    f"saw ts {vc[node_id]}"
                )
            if snap.precedes(write) and vc[node_id] >= ts:
                report.fail(
                    f"snapshot {snap.op_id} saw future write {write.op_id} "
                    f"(node {node_id}, ts {ts}) invoked after it responded"
                )

    # 6. Value agreement: returned values match the writes they cite.
    if check_values:
        for snap in snapshots:
            vc = snap.result.vector_clock
            values = snap.result.values
            for node_id, ts in enumerate(vc):
                if ts == 0:
                    if values[node_id] is not None and not allow_rebased_init:
                        report.fail(
                            f"snapshot {snap.op_id}: entry {node_id} has "
                            f"ts 0 but non-⊥ value {values[node_id]!r}"
                        )
                    continue
                write = write_table.get((node_id, ts))
                if write is not None and values[node_id] != write.argument:
                    report.fail(
                        f"snapshot {snap.op_id}: entry {node_id} cites write "
                        f"ts {ts} but value {values[node_id]!r} != written "
                        f"{write.argument!r}"
                    )

    return report


def check_exhaustive(records: Iterable[OperationRecord], n: int) -> bool:
    """Exhaustive (Wing & Gill) linearizability check for small histories.

    Searches for a permutation of the completed operations that respects
    real-time order and the sequential snapshot-object specification
    (every snapshot returns exactly the register state produced by the
    writes linearized before it).  Memoized on the set of linearized
    operations; practical up to roughly a dozen operations.
    """
    ops = [r for r in records if r.completed and not r.aborted]
    total = len(ops)
    if total > 20:
        raise HistoryError(
            f"exhaustive checker given {total} operations; it is meant for "
            "small cross-validation histories (<= 20)"
        )
    # Precompute the real-time precedence relation as bitmasks.
    must_precede = [0] * total  # bit j set => ops[j] must come before ops[i]
    for i, later in enumerate(ops):
        for j, earlier in enumerate(ops):
            if i != j and earlier.precedes(later):
                must_precede[i] |= 1 << j

    # Per-writer order: writes by the same node in ts order (SWMR).
    write_indices: dict[int, list[int]] = {}
    for index, op in enumerate(ops):
        if op.kind == WRITE:
            write_indices.setdefault(op.node_id, []).append(index)
    for indices in write_indices.values():
        indices.sort(key=lambda idx: ops[idx].result)
        for previous, current in zip(indices, indices[1:]):
            must_precede[current] |= 1 << previous

    full_mask = (1 << total) - 1

    def register_state(mask: int) -> tuple[int, ...]:
        """Vector clock implied by the writes linearized in ``mask``."""
        state = [0] * n
        for index in range(total):
            if mask & (1 << index) and ops[index].kind == WRITE:
                op = ops[index]
                state[op.node_id] = max(state[op.node_id], op.result)
        return tuple(state)

    @lru_cache(maxsize=None)
    def search(mask: int) -> bool:
        if mask == full_mask:
            return True
        state = register_state(mask)
        for index in range(total):
            bit = 1 << index
            if mask & bit:
                continue
            if must_precede[index] & ~mask:
                continue  # some predecessor not yet linearized
            op = ops[index]
            if op.kind == SNAPSHOT:
                expected = list(state)
                if tuple(op.result.vector_clock) != tuple(expected):
                    continue
            if search(mask | bit):
                return True
        return False

    try:
        return search(0)
    finally:
        search.cache_clear()
