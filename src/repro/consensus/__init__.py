"""Self-stabilizing multivalued consensus (ROADMAP item 5).

One decision primitive for every reconfiguration step: the bounded
algorithms' global reset (:mod:`repro.stabilization.bounded`) and the
sharded fabric's epoch installs
(:class:`repro.shard.epoch.ConsensusEpochDecider`) both agree on their
next configuration through :class:`ConsensusEndpoint`.  See
``docs/consensus.md`` for the protocol sketch and the
self-stabilization argument.
"""

from repro.consensus.core import ConsensusEndpoint
from repro.consensus.messages import (
    CONSENSUS_KINDS,
    CsBdecMessage,
    CsDecideMessage,
    CsProposalMessage,
    CsRbAckMessage,
    CsRbDataMessage,
    CsVoteMessage,
    valid_tag,
)

__all__ = [
    "CONSENSUS_KINDS",
    "ConsensusEndpoint",
    "CsBdecMessage",
    "CsDecideMessage",
    "CsProposalMessage",
    "CsRbAckMessage",
    "CsRbDataMessage",
    "CsVoteMessage",
    "valid_tag",
]
