"""Self-stabilizing multivalued consensus (ROADMAP item 5).

Implements the Lundström–Raynal–Schiller construction (see PAPERS.md):
multivalued consensus is reduced to a sequence of *binary* consensus
instances layered on reliable broadcast.

**Multivalued layer.**  A proposer URB-broadcasts its proposal for an
instance ``tag``; a participant without a proposal of its own *adopts*
the first delivered one (so a single proposer suffices — the shard-epoch
use case).  All nodes then scan candidates in a fixed order — candidate
``k`` of sweep ``s`` — running one binary consensus per candidate on
the question "do we take ``k``'s proposal?" with input 1 iff ``k``'s
proposal has been URB-delivered locally.  The first candidate whose
binary instance decides 1 wins, and its (delivered-by-then) proposal is
the multivalued decision.  A sweep in which every candidate decides 0
is followed by another sweep; by then the URB layer has delivered every
live proposer's value to everyone, so some candidate gets an all-1
input and its binary instance must decide 1.

**Binary layer.**  Mostéfaoui–Raynal rounds: in each round nodes
exchange *estimates* and wait for a majority, then exchange *auxiliary*
values (the estimate, if the majority was unanimous, else ⊥) and wait
for a majority.  Quorum intersection means at most one non-⊥ auxiliary
value circulates per round; a node seeing only ``v`` decides ``v``, a
node seeing ``v`` among ⊥s adopts it, and a node seeing only ⊥ adopts
the round's deterministic alternating fallback bit.  If any node
decides ``v`` in round ``r``, every majority in round ``r`` contains a
``v`` — so every node enters ``r + 1`` with estimate ``v`` and decides
``v`` there: agreement.  The deterministic fallback forgoes the
randomized-coin termination theorem, matching the *seldom fairness*
caveat the bounded-reset sketch already documents — in every schedule
the simulator or a live network actually produces, alternation breaks
symmetry within a few rounds.

**Self-stabilization.**  All per-instance state is bounded (round,
sweep, and instance counts are capped) and *checked*: every driver pass
revalidates the instance against its invariants and reinitializes
anything malformed (counted as ``consensus.heals``); a scan that runs
out of sweeps — only reachable from a corrupted binary-decision table —
recycles the instance (``consensus.recycled``), which is the
instance-GC story that lets a wedged instance re-run instead of
blocking forever.  Decided values gossip in reply to any late instance
traffic, conflicting decisions (again only corruption can mint them)
converge by a deterministic minimum rule, and an application-supplied
*validator* rejects decided values that corruption made nonsensical, so
the layer as a whole reaches agreement on a valid value from an
arbitrary starting state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.broadcast.reliable import ReliableBroadcast
from repro.consensus.messages import (
    PHASE_AUX,
    PHASE_EST,
    CsBdecMessage,
    CsDecideMessage,
    CsProposalMessage,
    CsRbAckMessage,
    CsRbDataMessage,
    CsVoteMessage,
    valid_tag,
)
from repro.errors import CancelledError
from repro.net.message import Message
from repro.net.node import Process

__all__ = ["ConsensusEndpoint"]

#: ⊥ in AUX-phase votes.
_BOT = -1


def _value_key(value: Any) -> str:
    """Deterministic total order on decided values (conflict convergence)."""
    return repr(value)


class _Binary:
    """One binary consensus: the Mostéfaoui–Raynal round machine.

    ``history`` records this node's own vote for every past
    ``(round, phase)`` of the machine — bounded by ``MAX_ROUND``.
    Rounds are not lockstep under loss: once a majority moves to round
    r+1 they only retransmit round-r+1 votes, so a node still missing
    one round-r vote would stall forever.  The history lets any node
    answer a behind-round vote with the exact vote it cast back then
    (votes are immutable once cast, so the reply is safe), which walks
    the laggard forward one phase per round trip.
    """

    __slots__ = ("round", "phase", "est", "aux", "history")

    def __init__(self, est: int) -> None:
        self.round = 1
        self.phase = PHASE_EST
        self.est = est
        self.aux = _BOT
        self.history: dict[tuple[int, str], int] = {}

    def point(self) -> tuple[int, int]:
        """Total order on (round, phase) progress points."""
        return (self.round, 0 if self.phase == PHASE_EST else 1)

    def sane(self, max_round: int) -> bool:
        return (
            isinstance(self.round, int)
            and 1 <= self.round <= max_round
            and self.phase in (PHASE_EST, PHASE_AUX)
            and self.est in (0, 1)
            and self.aux in (0, 1, _BOT)
            and isinstance(self.history, dict)
            and len(self.history) <= 2 * (max_round + 1)
        )


class _Instance:
    """Bounded state of one in-flight consensus instance.

    The binary instances of the current sweep all run *concurrently* —
    only the winner scan is sequential.  Safety needs nothing more
    (each binary instance agrees on its bit, and every node reads the
    settled bits in the same ``(sweep, cand)`` order), and concurrency
    collapses decide latency from "a round per candidate" to "one round
    for the whole sweep": a reset must finish within a few gossip
    cycles, so the walked-one-at-a-time textbook presentation is too
    slow to hide behind.
    """

    __slots__ = (
        "tag",
        "proposals",
        "own_value",
        "validator",
        "bdec",
        "active",
        "tallies",
        "progress",
        "waiters",
        "task",
        "done",
    )

    def __init__(self, tag: tuple) -> None:
        self.tag = tag
        #: URB-delivered proposals, by proposer id (first delivery wins).
        self.proposals: dict[int, Any] = {}
        self.own_value: Any = None
        self.validator: Callable[[Any], bool] | None = None
        #: Settled binary instances: (sweep, cand) → bit.
        self.bdec: dict[tuple[int, int], int] = {}
        self.waiters: list[Any] = []
        self.task = None
        self.done = False
        self.progress = None
        self.reset_rounds()

    def reset_rounds(self) -> None:
        """Reinitialize the volatile binary-round state."""
        #: (sweep, cand) → in-flight round machine (current sweep only).
        self.active: dict[tuple[int, int], _Binary] = {}
        #: (sweep, cand, round, phase) → {sender: bit}.
        self.tallies: dict[tuple, dict[int, int]] = {}

    def valid_proposal(self, value: Any) -> bool:
        """Whether ``value`` passes the locally installed validator."""
        validator = self.validator
        if validator is None:
            return True
        try:
            return bool(validator(value))
        except Exception:  # noqa: BLE001 - validator sees corrupt data
            return False


class ConsensusEndpoint:
    """One node's consensus service, attached as ``process.consensus``.

    Created at most once per process (handler registration is unique);
    use :meth:`ensure` when several layers — the bounded reset and the
    shard-epoch decider — may each want the endpoint on the same node.
    Decisions are announced to every registered listener as
    ``listener(tag, value)``; callers that need to block use
    :meth:`propose` / :meth:`result`.
    """

    #: Bounds making every piece of consensus state finite — the
    #: prerequisite for the self-stabilization argument (and the caps
    #: the healing guards enforce against corrupted counters).
    MAX_ROUND = 64
    MAX_SWEEP = 4
    MAX_INSTANCES = 8
    DECIDED_WINDOW = 8

    def __init__(self, process: Process) -> None:
        self.process = process
        self._instances: "OrderedDict[tuple, _Instance]" = OrderedDict()
        self._decided: "OrderedDict[tuple, Any]" = OrderedDict()
        self._listeners: list[Callable[[tuple, Any], None]] = []
        self._urb = ReliableBroadcast(
            process,
            self._on_urb_deliver,
            data_cls=CsRbDataMessage,
            ack_cls=CsRbAckMessage,
        )
        process.register_handler(CsVoteMessage.KIND, self._on_vote)
        process.register_handler(CsBdecMessage.KIND, self._on_bdec)
        process.register_handler(CsDecideMessage.KIND, self._on_decide)
        process.consensus = self

    @classmethod
    def ensure(cls, process: Process) -> "ConsensusEndpoint":
        """The process's endpoint, creating it on first use."""
        existing = getattr(process, "consensus", None)
        if isinstance(existing, ConsensusEndpoint):
            return existing
        return cls(process)

    # -- lifecycle ---------------------------------------------------------

    def reinitialize(self) -> None:
        """Forget all instance state (detectable restart)."""
        for instance in self._instances.values():
            if instance.task is not None:
                instance.task.cancel()
        self._instances.clear()
        self._decided.clear()

    def add_listener(self, listener: Callable[[tuple, Any], None]) -> None:
        """Register a decision callback ``listener(tag, value)``."""
        self._listeners.append(listener)

    # -- public API --------------------------------------------------------

    def result(self, tag: tuple) -> Any | None:
        """The decided value for ``tag`` within the retention window."""
        return self._decided.get(tag)

    def submit(
        self,
        tag: tuple,
        value: Any,
        validator: Callable[[Any], bool] | None = None,
    ) -> None:
        """Propose ``value`` for ``tag`` without waiting (idempotent).

        The first submission per tag wins locally; the decision is
        announced through the listeners.  ``validator`` installs the
        application's well-formedness check for this instance (local
        code, so it cannot itself be corrupted): proposals and decided
        values failing it are treated as transient corruption and
        purged rather than agreed on.
        """
        if not valid_tag(tag) or tag in self._decided:
            return
        instance = self._ensure_instance(tag)
        if validator is not None and instance.validator is None:
            instance.validator = validator
        if instance.own_value is None and instance.valid_proposal(value):
            instance.own_value = value
            instance.proposals.setdefault(self.process.node_id, value)
            self._urb.broadcast(CsProposalMessage(tag=tag, value=value))
            self._kick(instance)

    async def propose(
        self,
        tag: tuple,
        value: Any,
        validator: Callable[[Any], bool] | None = None,
    ) -> Any:
        """Propose ``value`` for ``tag`` and await the decided value."""
        if tag in self._decided:
            return self._decided[tag]
        self.submit(tag, value, validator=validator)
        instance = self._instances.get(tag)
        if instance is None:  # decided between submit and here
            return self._decided.get(tag)
        waiter = self.process.kernel.create_event()
        instance.waiters.append(waiter)
        await waiter.wait()
        return self._decided.get(tag)

    # -- instance management -----------------------------------------------

    def _ensure_instance(self, tag: tuple) -> _Instance:
        instance = self._instances.get(tag)
        if instance is not None:
            return instance
        if len(self._instances) >= self.MAX_INSTANCES:
            # GC: evict the oldest instance nobody local is waiting on.
            for old_tag, old in self._instances.items():
                if not old.waiters:
                    if old.task is not None:
                        old.task.cancel()
                    del self._instances[old_tag]
                    break
        instance = _Instance(tag)
        instance.progress = self.process.kernel.create_event()
        self._instances[tag] = instance
        instance.task = self.process.kernel.create_task(
            self._drive(instance),
            name=f"cs{self.process.node_id}.{tag[0]}.{tag[1]}",
        )
        return instance

    def _kick(self, instance: _Instance) -> None:
        if instance.progress is not None:
            instance.progress.set()

    def _bump(self, counter: str) -> None:
        obs = self.process.obs
        if obs is not None:
            setattr(obs, counter, getattr(obs, counter) + 1)

    # -- the driver --------------------------------------------------------

    async def _drive(self, instance: _Instance) -> None:
        """Run one instance to its decision (the do-forever of this layer).

        Each pass revalidates the state (healing corruption), advances
        the round machine as far as the received tallies allow, and
        re-broadcasts the current vote; it then sleeps until new
        traffic arrives or the retransmission interval elapses.
        """
        process = self.process
        try:
            while not instance.done:
                # Re-arm *before* stepping: a kick that lands mid-step
                # must not be lost between events.
                wakeup = process.kernel.create_event()
                instance.progress = wakeup
                await process.gate.passthrough()
                self._step(instance)
                if instance.done:
                    return
                try:
                    await process.kernel.wait_for(
                        wakeup.wait(),
                        timeout=process.config.retransmit_interval,
                    )
                except TimeoutError:
                    pass  # retransmit via the next pass
        except CancelledError:
            raise

    def _step(self, instance: _Instance) -> None:
        self._heal(instance)
        guard = 2 * self.MAX_SWEEP * self.process.config.n * self.MAX_ROUND
        while not instance.done and guard > 0:
            guard -= 1
            sweep = self._scan(instance)
            if instance.done or sweep is None:
                return
            self._open_sweep(instance, sweep)
            if not any(
                self._advance(instance, position)
                for position in sorted(instance.active)
            ):
                break
        if not instance.done:
            for position in sorted(instance.active):
                self._broadcast_vote(instance, position)

    def _scan(self, instance: _Instance) -> int | None:
        """Look for a winner, returning the working sweep if none yet.

        Walks ``(sweep, cand)`` in the fixed common order: the first
        candidate whose settled bit is 1 wins.  Returns the first sweep
        holding an unsettled candidate (the binary instances to run
        now), or ``None`` when the instance just decided — or has a
        winner whose proposal the URB layer hasn't delivered here yet.
        """
        n = self.process.config.n
        for sweep in range(self.MAX_SWEEP):
            for cand in range(n):
                position = (sweep, cand)
                bit = instance.bdec.get(position)
                if bit is None:
                    return sweep
                if bit != 1:
                    continue
                if cand not in instance.proposals:
                    # Won before its proposal reached us: the URB layer
                    # is still retransmitting; stay here until it lands.
                    return None
                value = instance.proposals[cand]
                if not instance.valid_proposal(value):
                    # A corrupted proposal won: purge it and demote the
                    # candidate so the scan moves on (heals, not wedges).
                    del instance.proposals[cand]
                    instance.bdec[position] = 0
                    self._bump("consensus_heals")
                    continue
                self._finish(instance, value)
                return None
        # Every sweep decided 0 — impossible in a legal execution, so
        # the binary-decision table was corrupted: recycle the instance.
        instance.bdec.clear()
        instance.reset_rounds()
        self._bump("consensus_recycled")
        return 0

    def _open_sweep(self, instance: _Instance, sweep: int) -> None:
        """Start round machines for the sweep's unsettled candidates.

        All of them run concurrently; a candidate's input is 1 iff its
        proposal has been URB-delivered here by the time the sweep
        opens (later sweeps therefore see later deliveries — the
        liveness fix for a first sweep whose inputs were all 0).
        """
        for position, binary in list(instance.active.items()):
            if position[0] != sweep or position in instance.bdec:
                del instance.active[position]
        for cand in range(self.process.config.n):
            position = (sweep, cand)
            if position in instance.bdec or position in instance.active:
                continue
            proposal = instance.proposals.get(cand)
            est = int(
                proposal is not None and instance.valid_proposal(proposal)
            )
            instance.active[position] = _Binary(est)

    def _advance(self, instance: _Instance, position: tuple[int, int]) -> bool:
        """One round transition of ``position``'s machine; True if moved."""
        binary = instance.active.get(position)
        if binary is None:
            return False
        tally = instance.tallies.setdefault(
            position + (binary.round, binary.phase), {}
        )
        own = binary.est if binary.phase == PHASE_EST else binary.aux
        tally.setdefault(self.process.node_id, own)
        binary.history[(binary.round, binary.phase)] = own
        if len(tally) < self.process.config.majority:
            return False
        if binary.phase == PHASE_EST:
            values = set(tally.values())
            binary.aux = values.pop() if len(values) == 1 else _BOT
            binary.phase = PHASE_AUX
            return True
        aux_values = set(tally.values()) - {_BOT}
        if len(aux_values) == 1 and _BOT not in set(tally.values()):
            self._settle(instance, position, aux_values.pop())
            return True
        if aux_values:
            # At most one non-⊥ value can circulate (quorum
            # intersection); min() is pure defensiveness.
            binary.est = min(aux_values)
        else:
            binary.est = binary.round & 1  # alternating fallback bit
        binary.round += 1
        binary.phase = PHASE_EST
        self._bump("consensus_rounds")
        if binary.round > self.MAX_ROUND:
            # Only a corrupted round counter gets here; restart the
            # binary instance from its input.
            proposal = instance.proposals.get(position[1])
            instance.active[position] = _Binary(
                int(proposal is not None and instance.valid_proposal(proposal))
            )
            self._bump("consensus_heals")
        return True

    def _settle(
        self, instance: _Instance, position: tuple[int, int], bit: int
    ) -> None:
        """Record one finished binary instance and tell the others."""
        instance.bdec[position] = bit
        instance.active.pop(position, None)
        self._prune_tallies(instance)
        self.process.broadcast(
            CsBdecMessage(
                tag=instance.tag,
                sweep=position[0],
                cand=position[1],
                bit=bit,
            ),
            include_self=False,
        )

    def _broadcast_vote(
        self, instance: _Instance, position: tuple[int, int]
    ) -> None:
        binary = instance.active.get(position)
        if binary is None:
            return
        bit = binary.est if binary.phase == PHASE_EST else binary.aux
        self.process.broadcast(
            CsVoteMessage(
                tag=instance.tag,
                sweep=position[0],
                cand=position[1],
                round=binary.round,
                phase=binary.phase,
                bit=bit,
            ),
            include_self=False,
        )

    def _prune_tallies(self, instance: _Instance) -> None:
        """Drop tallies for settled positions and superseded rounds."""
        stale = []
        for key in instance.tallies:
            position = key[:2]
            if position in instance.bdec:
                stale.append(key)
                continue
            binary = instance.active.get(position)
            if binary is not None and key[2] < binary.round:
                stale.append(key)
        for key in stale:
            del instance.tallies[key]

    # -- deciding ----------------------------------------------------------

    def _finish(self, instance: _Instance, value: Any) -> None:
        self._record_decision(instance.tag, value)
        instance.done = True  # the driver observes this and returns
        for waiter in instance.waiters:
            waiter.set()
        instance.waiters = []
        self._instances.pop(instance.tag, None)
        self._bump("consensus_decides")
        self.process.broadcast(
            CsDecideMessage(tag=instance.tag, value=value), include_self=False
        )

    def _record_decision(self, tag: tuple, value: Any) -> None:
        self._decided[tag] = value
        self._decided.move_to_end(tag)
        while len(self._decided) > self.DECIDED_WINDOW:
            self._decided.popitem(last=False)
        for listener in self._listeners:
            listener(tag, value)

    def _reply_decided(self, sender: int, tag: tuple) -> None:
        self.process.send(
            sender, CsDecideMessage(tag=tag, value=self._decided[tag])
        )

    # -- healing -----------------------------------------------------------

    def _heal(self, instance: _Instance) -> None:
        """Revalidate one instance's state, reinitializing what's broken.

        This is the convergence half of the self-stabilization
        contract: a transient fault may have written arbitrary values
        into any field; every driver pass re-derives a legal state from
        whatever survives validation, so a corrupted instance re-runs
        (and re-decides) instead of wedging.
        """
        n = self.process.config.n
        healed = False
        if not isinstance(instance.proposals, dict):
            instance.proposals = {}
            healed = True
        else:
            bad = [
                k
                for k in instance.proposals
                if not isinstance(k, int)
                or not 0 <= k < n
                or not instance.valid_proposal(instance.proposals[k])
            ]
            for k in bad:
                del instance.proposals[k]
            healed = healed or bool(bad)
        if not isinstance(instance.bdec, dict):
            instance.bdec = {}
            healed = True
        else:
            bad = [
                key
                for key, bit in instance.bdec.items()
                if not (
                    isinstance(key, tuple)
                    and len(key) == 2
                    and isinstance(key[0], int)
                    and isinstance(key[1], int)
                    and 0 <= key[0] < self.MAX_SWEEP
                    and 0 <= key[1] < n
                    and bit in (0, 1)
                )
            ]
            for key in bad:
                del instance.bdec[key]
            healed = healed or bool(bad)
        rounds_ok = isinstance(instance.active, dict) and isinstance(
            instance.tallies, dict
        )
        if rounds_ok:
            for position, binary in list(instance.active.items()):
                if not (
                    isinstance(position, tuple)
                    and len(position) == 2
                    and isinstance(binary, _Binary)
                    and binary.sane(self.MAX_ROUND)
                    and position not in instance.bdec
                ):
                    del instance.active[position]
                    healed = True
        else:
            instance.reset_rounds()
            healed = True
        if healed:
            self._bump("consensus_heals")

    # -- wire handlers -----------------------------------------------------

    def _on_urb_deliver(self, origin: int, payload: Message) -> None:
        if not isinstance(payload, CsProposalMessage):
            return
        tag = payload.tag
        if not valid_tag(tag):
            return
        if tag in self._decided:
            if origin != self.process.node_id:
                self._reply_decided(origin, tag)
            return
        instance = self._ensure_instance(tag)
        if not instance.valid_proposal(payload.value):
            self._bump("consensus_heals")
            return
        instance.proposals.setdefault(origin, payload.value)
        if instance.own_value is None:
            # Proposal adoption: a participant with nothing to propose
            # backs the first delivered proposal, so one proposer
            # suffices to drive the instance.
            instance.own_value = payload.value
        self._kick(instance)

    def _on_vote(self, sender: int, message: CsVoteMessage) -> None:
        tag = message.tag
        if not valid_tag(tag):
            return
        if tag in self._decided:
            self._reply_decided(sender, tag)
            return
        n = self.process.config.n
        if (
            not isinstance(message.sweep, int)
            or not isinstance(message.cand, int)
            or not isinstance(message.round, int)
            or not 0 <= message.sweep < self.MAX_SWEEP
            or not 0 <= message.cand < n
            or not 1 <= message.round <= self.MAX_ROUND
            or message.phase not in (PHASE_EST, PHASE_AUX)
        ):
            return
        bit = message.bit
        if bit not in (0, 1) and not (
            message.phase == PHASE_AUX and bit == _BOT
        ):
            return
        instance = self._ensure_instance(tag)
        position = (message.sweep, message.cand)
        settled = instance.bdec.get(position)
        if settled is not None:
            self.process.send(
                sender,
                CsBdecMessage(
                    tag=tag,
                    sweep=message.sweep,
                    cand=message.cand,
                    bit=settled,
                ),
            )
            return
        tally = instance.tallies.setdefault(
            position + (message.round, message.phase), {}
        )
        tally.setdefault(sender, bit)
        self._reply_behind_vote(instance, sender, message)
        self._kick(instance)

    def _reply_behind_vote(
        self, instance: _Instance, sender: int, message: CsVoteMessage
    ) -> None:
        """Answer a vote for a phase we already completed with our own.

        The sender is a laggard (it missed votes to loss or a
        partition) still collecting a majority for a ``(round, phase)``
        this node's machine has moved past.  Our vote for that exact
        point is immutable once cast — replying with the recorded copy
        is equivalent to the original send arriving late, and it is
        what un-sticks the laggard: one recorded vote per retransmitted
        request walks it forward to the live round.
        """
        binary = instance.active.get((message.sweep, message.cand))
        if not isinstance(binary, _Binary) or not isinstance(
            binary.history, dict
        ):
            return
        point = (message.round, 0 if message.phase == PHASE_EST else 1)
        if point >= binary.point():
            return
        own = binary.history.get((message.round, message.phase))
        if own not in (0, 1) and not (
            message.phase == PHASE_AUX and own == _BOT
        ):
            return  # never voted there (or corrupted history): nothing safe to say
        self.process.send(
            sender,
            CsVoteMessage(
                tag=instance.tag,
                sweep=message.sweep,
                cand=message.cand,
                round=message.round,
                phase=message.phase,
                bit=own,
            ),
        )

    def _on_bdec(self, sender: int, message: CsBdecMessage) -> None:
        tag = message.tag
        if not valid_tag(tag):
            return
        if tag in self._decided:
            self._reply_decided(sender, tag)
            return
        n = self.process.config.n
        if (
            not isinstance(message.sweep, int)
            or not isinstance(message.cand, int)
            or not 0 <= message.sweep < self.MAX_SWEEP
            or not 0 <= message.cand < n
            or message.bit not in (0, 1)
        ):
            return
        instance = self._ensure_instance(tag)
        position = (message.sweep, message.cand)
        existing = instance.bdec.get(position)
        if existing is None:
            instance.bdec[position] = message.bit
        elif existing != message.bit:
            # Conflicting settled bits can only come from corruption;
            # converge deterministically on the smaller.
            instance.bdec[position] = min(existing, message.bit)
            self._bump("consensus_heals")
        instance.active.pop(position, None)
        self._prune_tallies(instance)
        self._kick(instance)

    def _on_decide(self, sender: int, message: CsDecideMessage) -> None:
        tag = message.tag
        if not valid_tag(tag):
            return
        value = message.value
        existing = self._decided.get(tag)
        if existing is not None:
            if _value_key(value) < _value_key(existing):
                # Conflicting decisions (a corruption artifact):
                # converge on the deterministic minimum and re-announce
                # so every layer above re-applies the agreed value.
                self._record_decision(tag, value)
                self._bump("consensus_heals")
            elif _value_key(value) > _value_key(existing):
                self._reply_decided(sender, tag)
            return
        instance = self._instances.get(tag)
        if instance is not None:
            if not instance.valid_proposal(value):
                self._bump("consensus_heals")
                return
            self._finish(instance, value)
            return
        # Never participated (or already GC'd): adopt the outcome.
        self._record_decision(tag, value)
