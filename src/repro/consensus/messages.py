"""Wire messages of the self-stabilizing multivalued consensus layer.

Tags
----
Every consensus *instance* is named by a ``tag``: a ``(label, number)``
tuple such as ``("reset", epoch)`` or ``("shard-epoch", e)``.  Tags are
plain data, so they travel on the wire and survive the codec round trip;
:func:`valid_tag` is the receiver-side hygiene check that lets a node
drop garbage tags (a transient fault can place arbitrary bytes in a
message field) instead of allocating instance state for them.

Carriers
--------
Proposals disseminate over :class:`repro.broadcast.reliable
.ReliableBroadcast` using the dedicated ``CS_RB``/``CS_RB_ACK`` carriers
below — the same machinery Algorithm 2 uses for ``SNAP``/``END``, on a
separate message kind so one process can host both endpoints.  The
binary-round traffic (``CS_VOTE``/``CS_BDEC``) and the decision gossip
(``CS_DECIDE``) ride the bare unreliable channels and rely on the
endpoint's own retransmission (every driver pass re-broadcasts the
current vote, the paper's ``repeat broadcast …`` discipline).

All consensus kinds must *bypass* the bounded algorithms' epoch
envelope: like the reset messages, a consensus instance that decides the
next epoch necessarily spans the epoch boundary (see
``repro.stabilization.bounded``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.broadcast.reliable import RbAckMessage, RbDataMessage
from repro.net.message import Message

__all__ = [
    "CONSENSUS_KINDS",
    "CsBdecMessage",
    "CsDecideMessage",
    "CsProposalMessage",
    "CsRbAckMessage",
    "CsRbDataMessage",
    "CsVoteMessage",
    "PHASE_AUX",
    "PHASE_EST",
    "valid_tag",
]

#: Binary-round phases (Mostéfaoui-Raynal style): first everyone
#: exchanges round *estimates*, then *auxiliary* values (an estimate a
#: majority agreed on, or ⊥ encoded as ``-1``).
PHASE_EST = "est"
PHASE_AUX = "aux"

#: Longest accepted tag label; anything longer is treated as corruption.
_MAX_LABEL = 64


def valid_tag(tag: Any) -> bool:
    """Whether ``tag`` is a well-formed instance name.

    The check is deliberately strict — ``(str, int)`` with a short label
    and a non-negative number — because every message handler uses it as
    its first line of defense against transiently corrupted fields.
    """
    return (
        isinstance(tag, tuple)
        and len(tag) == 2
        and isinstance(tag[0], str)
        and 0 < len(tag[0]) <= _MAX_LABEL
        and isinstance(tag[1], int)
        and not isinstance(tag[1], bool)
        and tag[1] >= 0
    )


@dataclass(frozen=True)
class CsRbDataMessage(RbDataMessage):
    """Reliable-broadcast carrier for consensus proposals."""

    KIND = "CS_RB"


@dataclass(frozen=True)
class CsRbAckMessage(RbAckMessage):
    """Per-receiver acknowledgement of one consensus carrier."""

    KIND = "CS_RB_ACK"


@dataclass(frozen=True)
class CsProposalMessage(Message):
    """A proposed value for one instance (travels inside ``CS_RB``)."""

    KIND = "CS_PROP"
    tag: tuple
    value: Any


@dataclass(frozen=True)
class CsVoteMessage(Message):
    """One binary-consensus round vote.

    ``sweep``/``cand`` name the binary instance (candidate ``cand`` of
    sweep ``sweep``), ``round``/``phase`` position the vote inside it,
    and ``bit`` is the voted value (``-1`` encodes the AUX phase's ⊥).
    """

    KIND = "CS_VOTE"
    tag: tuple
    sweep: int
    cand: int
    round: int
    phase: str
    bit: int


@dataclass(frozen=True)
class CsBdecMessage(Message):
    """A settled binary instance: candidate ``cand`` of ``sweep`` → ``bit``.

    Sent in reply to votes for a binary instance the sender has already
    finished, so a straggler never stalls waiting for round partners
    that have moved on.
    """

    KIND = "CS_BDEC"
    tag: tuple
    sweep: int
    cand: int
    bit: int


@dataclass(frozen=True)
class CsDecideMessage(Message):
    """The multivalued decision for one instance.

    Broadcast once on deciding, and re-sent in reply to *any* late
    traffic for the instance — the catch-up path that lets nodes which
    slept through the whole agreement adopt its outcome.
    """

    KIND = "CS_DECIDE"
    tag: tuple
    value: Any


#: Every consensus message kind (epoch-envelope bypass set).
CONSENSUS_KINDS = frozenset(
    {
        CsRbDataMessage.KIND,
        CsRbAckMessage.KIND,
        CsProposalMessage.KIND,
        CsVoteMessage.KIND,
        CsBdecMessage.KIND,
        CsDecideMessage.KIND,
    }
)
