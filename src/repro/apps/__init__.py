"""Applications built on the snapshot-object API.

The paper motivates snapshot objects as a foundation that makes
"the design and analysis of algorithms that base their implementation
on shared registers easier"; this package demonstrates it with the
classic constructions: a linearizable distributed counter, a phase
barrier, and stable-global-predicate detection.
"""

from repro.apps.barrier import PhaseBarrier, PredicateDetector
from repro.apps.counter import CounterReading, DistributedCounter

__all__ = [
    "CounterReading",
    "DistributedCounter",
    "PhaseBarrier",
    "PredicateDetector",
]
