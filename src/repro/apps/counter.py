"""A linearizable distributed counter built on the snapshot object.

The textbook first application of atomic snapshots: each node owns one
SWMR register holding its *local contribution*; incrementing is a write
to the own register; reading is a snapshot whose entries are summed.
Because the snapshot is atomic, reads are totally ordered and never miss
a completed increment — properties a naive read-all-registers poller
cannot give.

The counter inherits every guarantee of the underlying algorithm: with
``ss-*`` algorithms it self-stabilizes (after a transient fault, the
count may transiently be arbitrary, but within O(1) cycles it again
reflects exactly the completed increments — plus whatever corruption
inflated surviving register values, which a fresh increment supersedes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.sim import SimBackend

__all__ = ["CounterReading", "DistributedCounter"]


@dataclass(frozen=True, slots=True)
class CounterReading:
    """The outcome of a counter read.

    ``total`` is the linearized sum; ``per_node`` the contributions;
    ``vector_clock`` the underlying snapshot evidence (useful to compare
    two readings: one dominates the other iff its clock does).
    """

    total: int
    per_node: tuple[int, ...]
    vector_clock: tuple[int, ...]

    def dominates(self, earlier: "CounterReading") -> bool:
        """Whether this reading is at least as recent, entrywise."""
        return all(
            a >= b for a, b in zip(self.vector_clock, earlier.vector_clock)
        )


class DistributedCounter:
    """Increment/read counter over a snapshot-object cluster.

    One counter instance wraps one cluster; each node's contribution
    lives in its own register, so increments from different nodes never
    contend.  ``amount`` may be any positive integer (batched adds).
    """

    def __init__(self, cluster: SimBackend) -> None:
        self._cluster = cluster
        self._local: dict[int, int] = {}

    async def increment(self, node_id: int, amount: int = 1) -> int:
        """Add ``amount`` at ``node_id``; returns the node's contribution.

        The node's current contribution is tracked locally (the register
        is single-writer, so the local cache is authoritative between
        transient faults) and the new total contribution is written.
        """
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        current = self._local.get(node_id)
        if current is None:
            # Recover the contribution from the node's own register
            # (e.g. first use, or after a detectable restart).
            entry = self._cluster.node(node_id).reg[node_id]
            current = entry.value if isinstance(entry.value, int) else 0
        new_value = current + amount
        await self._cluster.write(node_id, new_value)
        self._local[node_id] = new_value
        return new_value

    async def read(self, node_id: int) -> CounterReading:
        """Linearized read: snapshot and sum the contributions."""
        view = await self._cluster.snapshot(node_id)
        per_node = tuple(
            value if isinstance(value, int) else 0 for value in view.values
        )
        return CounterReading(
            total=sum(per_node),
            per_node=per_node,
            vector_clock=view.vector_clock,
        )

    # -- synchronous conveniences (simulated clusters) ----------------------------

    def increment_sync(self, node_id: int, amount: int = 1) -> int:
        """Run the kernel until one increment completes."""
        return self._cluster.run_until(self.increment(node_id, amount))

    def read_sync(self, node_id: int) -> CounterReading:
        """Run the kernel until one read completes."""
        return self._cluster.run_until(self.read(node_id))
