"""Phase barrier and global-predicate detection on the snapshot object.

Two more classic snapshot applications:

* :class:`PhaseBarrier` — each node writes its current phase number;
  a node passes the barrier for phase *p* once a snapshot shows every
  participant at phase ≥ *p*.  Atomicity makes the rule safe: the
  observed cut is a real global state, so no node can be observed ahead
  while actually behind.
* :class:`PredicateDetector` — evaluates a stable global predicate over
  consistent cuts.  For *stable* predicates (once true, forever true —
  e.g. "every node has checkpointed"), atomic snapshots give sound and
  complete detection.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.backend.sim import SimBackend

__all__ = ["PhaseBarrier", "PredicateDetector"]


class PhaseBarrier:
    """A reusable multi-phase barrier over a snapshot-object cluster.

    Participants call :meth:`enter` to announce a phase, then
    :meth:`await_phase` to block until every participant reached it.
    Non-participating nodes (e.g. pure observers) can be excluded via
    ``participants``.
    """

    def __init__(
        self,
        cluster: SimBackend,
        participants: Sequence[int] | None = None,
        poll_interval: float = 2.0,
    ) -> None:
        self._cluster = cluster
        self.participants = (
            list(participants)
            if participants is not None
            else list(range(cluster.config.n))
        )
        self._poll_interval = poll_interval

    async def enter(self, node_id: int, phase: int) -> None:
        """Announce that ``node_id`` reached ``phase``."""
        if phase < 1:
            raise ValueError(f"phases start at 1, got {phase}")
        await self._cluster.write(node_id, phase)

    async def await_phase(self, node_id: int, phase: int) -> tuple[int, ...]:
        """Block until a snapshot shows every participant at ≥ ``phase``.

        Returns the observed phase vector (participants only).  Polls
        with fresh snapshots; each poll is a linearized global check.
        """
        while True:
            view = await self._cluster.snapshot(node_id)
            phases = tuple(
                view.values[k] if isinstance(view.values[k], int) else 0
                for k in self.participants
            )
            if all(p >= phase for p in phases):
                return phases
            await self._cluster.kernel.sleep(self._poll_interval)

    async def run_phases(self, node_id: int, phases: int) -> None:
        """Drive one participant through ``phases`` barrier rounds."""
        for phase in range(1, phases + 1):
            await self.enter(node_id, phase)
            await self.await_phase(node_id, phase)


class PredicateDetector:
    """Detects a stable global predicate over consistent cuts.

    ``predicate`` receives the snapshot's value tuple and returns a
    bool.  :meth:`wait_until` polls snapshots until it holds; because
    each poll is an atomic cut, a ``True`` verdict is evidence of a real
    global state satisfying the predicate (sound), and stability makes
    repeated polling complete.
    """

    def __init__(
        self,
        cluster: SimBackend,
        predicate: Callable[[tuple[Any, ...]], bool],
        poll_interval: float = 2.0,
    ) -> None:
        self._cluster = cluster
        self._predicate = predicate
        self._poll_interval = poll_interval

    async def check(self, node_id: int) -> bool:
        """One linearized evaluation of the predicate."""
        view = await self._cluster.snapshot(node_id)
        return bool(self._predicate(view.values))

    async def wait_until(self, node_id: int, max_polls: int | None = None):
        """Poll until the predicate holds; returns the witnessing values.

        Raises :class:`TimeoutError` after ``max_polls`` failed polls.
        """
        polls = 0
        while True:
            view = await self._cluster.snapshot(node_id)
            if self._predicate(view.values):
                return view.values
            polls += 1
            if max_polls is not None and polls >= max_polls:
                raise TimeoutError(
                    f"predicate still false after {polls} polls"
                )
            await self._cluster.kernel.sleep(self._poll_interval)
