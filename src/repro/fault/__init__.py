"""Fault injection: crashes, transient state corruption, partitions."""

from repro.fault.adversary import PartitionSchedule, flapping_partition, isolate
from repro.fault.crash import CrashEvent, CrashSchedule, random_minority
from repro.fault.transient import TransientFaultInjector

__all__ = [
    "CrashEvent",
    "CrashSchedule",
    "PartitionSchedule",
    "TransientFaultInjector",
    "flapping_partition",
    "isolate",
    "random_minority",
]
