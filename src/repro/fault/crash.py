"""Crash-fault scheduling helpers.

The paper's crash model: up to ``f`` nodes with ``2f < n`` may stop taking
steps, possibly forever; a failing node may later *resume* (undetectable
restart) or perform a *detectable restart* that reinitializes its
variables.  These helpers drive those events against a cluster on a
schedule, for both tests and the crash-tolerance benchmarks (E13).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.backend.sim import SimBackend

__all__ = ["CrashEvent", "CrashSchedule", "random_minority"]


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """One scheduled crash or resume.

    ``at`` is simulated time; ``action`` is ``"crash"``, ``"resume"`` or
    ``"restart"`` (resume with detectable restart).
    """

    at: float
    node_id: int
    action: str

    _ACTIONS = ("crash", "resume", "restart")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ValueError(f"unknown crash action {self.action!r}")


class CrashSchedule:
    """Applies a list of :class:`CrashEvent` to a cluster's kernel clock."""

    def __init__(self, cluster: SimBackend, events: list[CrashEvent]) -> None:
        self._cluster = cluster
        self.events = sorted(events, key=lambda e: e.at)
        self.applied: list[CrashEvent] = []

    def install(self) -> None:
        """Schedule every event on the cluster's kernel."""
        for event in self.events:
            self._cluster.kernel.call_at(event.at, self._apply, event)

    def _apply(self, event: CrashEvent) -> None:
        if event.action == "crash":
            self._cluster.crash(event.node_id)
        elif event.action == "resume":
            self._cluster.resume(event.node_id, restart=False)
        else:
            self._cluster.resume(event.node_id, restart=True)
        self.applied.append(event)


def random_minority(
    n: int, rng: random.Random, f: int | None = None
) -> list[int]:
    """Pick a random crash set of size ``f`` (default: the max ``2f < n``)."""
    limit = (n - 1) // 2
    if f is None:
        f = limit
    if f > limit:
        raise ValueError(f"f={f} violates 2f < n for n={n}")
    return sorted(rng.sample(range(n), f))
