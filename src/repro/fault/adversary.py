"""Adversarial network scheduling: partitions and targeted isolation.

The paper's asynchronous model lets an adversary delay any message
arbitrarily; on top of the seeded random delays, these helpers drive
*structured* adversity — healing partitions, isolating a minority, or
repeatedly flapping connectivity — against a running cluster.  Safety
(linearizability of completed operations) must survive all of them;
liveness resumes once a majority is mutually connected again.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.backend.sim import SimBackend

__all__ = ["PartitionSchedule", "isolate", "flapping_partition"]


def isolate(cluster: SimBackend, nodes: Iterable[int]) -> None:
    """Partition the given nodes away from the rest of the cluster."""
    group = set(nodes)
    rest = set(range(cluster.config.n)) - group
    cluster.network.partition(group, rest)


def flapping_partition(
    cluster: SimBackend,
    groups: Sequence[set[int]],
    period: float,
    flaps: int,
) -> None:
    """Alternate between partitioned and healed every ``period`` units.

    Schedules ``flaps`` partition/heal pairs on the cluster's kernel,
    starting one ``period`` from now.
    """
    for flap in range(flaps):
        start = (2 * flap + 1) * period
        cluster.kernel.call_later(
            start, lambda: cluster.network.partition(*groups)
        )
        cluster.kernel.call_later(start + period, cluster.network.heal)


class PartitionSchedule:
    """A scripted sequence of partition/heal events.

    Each entry is ``(at, groups)`` where ``groups`` is a tuple of node
    sets (empty tuple = heal).  Install once; events fire on the
    cluster's simulated clock.
    """

    def __init__(
        self,
        cluster: SimBackend,
        events: Sequence[tuple[float, tuple[set[int], ...]]],
    ) -> None:
        self._cluster = cluster
        self.events = sorted(events, key=lambda e: e[0])
        self.applied: list[float] = []

    def install(self) -> None:
        """Schedule every event on the cluster's kernel."""
        for at, groups in self.events:
            self._cluster.kernel.call_at(at, self._apply, at, groups)

    def _apply(self, at: float, groups: tuple[set[int], ...]) -> None:
        if groups:
            self._cluster.network.partition(*groups)
        else:
            self._cluster.network.heal()
        self.applied.append(at)
