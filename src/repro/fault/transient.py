"""Transient-fault injection: arbitrary state corruption.

The paper's fault model lets a transient fault drive the system into an
*arbitrary* state — control variables (``ts``, ``ssn``, ``sns``), the
register buffers, the pending-task table, and the contents of every
communication channel may all hold garbage (only the code stays intact).

:class:`TransientFaultInjector` reproduces that model against any
running :class:`~repro.backend.base.ClusterBackend` (sim, asyncio, or
UDP) — it only touches process state and whatever ``network.channels()``
exposes, so on backends without inspectable channels (real UDP) channel
scrambling degrades to a no-op while node-state corruption still
applies.  All randomness is drawn from a dedicated seeded RNG so
corrupted runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING, Iterable

from repro.core.register import TimestampedValue
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backend.base import ClusterBackend

__all__ = ["TransientFaultInjector"]

#: Upper bound for randomly drawn corrupted indices.
_WILD_INDEX = 1_000_000


class TransientFaultInjector:
    """Scrambles node state and channel contents of a cluster."""

    def __init__(self, cluster: "ClusterBackend", seed: int = 0) -> None:
        self._cluster = cluster
        self._rng = random.Random(seed)

    # -- helpers ---------------------------------------------------------------

    def _targets(self, node_ids: Iterable[int] | None) -> list[int]:
        if node_ids is None:
            return list(range(self._cluster.config.n))
        return list(node_ids)

    def _wild_ts(self) -> int:
        return self._rng.randrange(0, _WILD_INDEX)

    # -- node-state corruption ------------------------------------------------------

    def corrupt_write_indices(
        self, node_ids: Iterable[int] | None = None, value: int | None = None
    ) -> None:
        """Overwrite ``ts`` at the target nodes (random unless given)."""
        for node_id in self._targets(node_ids):
            process = self._cluster.node(node_id)
            process.ts = self._wild_ts() if value is None else value

    def corrupt_snapshot_indices(
        self, node_ids: Iterable[int] | None = None, value: int | None = None
    ) -> None:
        """Overwrite ``ssn`` (and ``sns`` where present)."""
        for node_id in self._targets(node_ids):
            process = self._cluster.node(node_id)
            if hasattr(process, "ssn"):
                process.ssn = self._wild_ts() if value is None else value
            if hasattr(process, "sns"):
                process.sns = self._wild_ts() if value is None else value

    def corrupt_registers(
        self,
        node_ids: Iterable[int] | None = None,
        entries: Iterable[int] | None = None,
    ) -> None:
        """Replace register entries with arbitrary timestamped garbage."""
        n = self._cluster.config.n
        for node_id in self._targets(node_ids):
            process = self._cluster.node(node_id)
            targets = list(entries) if entries is not None else range(n)
            for k in targets:
                process.reg[k] = TimestampedValue(
                    ts=self._wild_ts(),
                    value=bytes([self._rng.randrange(256)]),
                )

    def corrupt_pending_tasks(
        self, node_ids: Iterable[int] | None = None
    ) -> None:
        """Scramble Algorithm 3's ``pndTsk`` entries (sns, vc, fnl)."""
        n = self._cluster.config.n
        for node_id in self._targets(node_ids):
            process = self._cluster.node(node_id)
            if not hasattr(process, "pnd_tsk"):
                continue
            for k in range(n):
                task = process.pnd_tsk[k]
                choice = self._rng.randrange(4)
                if choice == 0:
                    task.sns = self._wild_ts()
                elif choice == 1:
                    task.vc = tuple(
                        self._wild_ts() for _ in range(n)
                    )
                elif choice == 2:
                    task.fnl = None
                    task.sns = self._wild_ts()
                else:
                    task.vc = None

    def corrupt_consensus(self, node_ids: Iterable[int] | None = None) -> None:
        """Scramble the consensus layer's per-instance state.

        Targets every field the self-stabilization argument of
        :mod:`repro.consensus` claims to survive: settled binary bits,
        round machines, vote tallies, and delivered proposals all get
        arbitrary garbage.  Nodes without a consensus endpoint (or with
        no live instances) are silently skipped, so the injector works
        against every algorithm.
        """
        from repro.consensus.core import _Binary

        for node_id in self._targets(node_ids):
            process = self._cluster.node(node_id)
            endpoint = getattr(process, "consensus", None)
            if endpoint is None:
                continue
            for instance in getattr(endpoint, "_instances", {}).values():
                choice = self._rng.randrange(4)
                if choice == 0:
                    # Forge settled bits (including out-of-range keys).
                    instance.bdec[(self._rng.randrange(8), self._wild_ts())] = (
                        self._rng.randrange(4)
                    )
                    for position in list(instance.bdec):
                        instance.bdec[position] = self._rng.randrange(2)
                elif choice == 1:
                    for binary in instance.active.values():
                        binary.round = self._wild_ts()
                        binary.est = self._rng.randrange(-2, 3)
                        binary.phase = "garbage"
                    instance.active[(self._wild_ts(), 0)] = _Binary(1)
                elif choice == 2:
                    instance.tallies[(0, 0, self._wild_ts(), "est")] = {
                        self._wild_ts(): self._rng.randrange(-2, 3)
                    }
                    for tally in instance.tallies.values():
                        for sender in list(tally):
                            tally[sender] = self._rng.randrange(-2, 3)
                else:
                    instance.proposals[self._rng.randrange(16)] = bytes(
                        [self._rng.randrange(256)]
                    )

    # -- channel corruption ------------------------------------------------------------

    def scramble_channels(self, drop_probability: float = 0.3) -> int:
        """Corrupt in-flight messages: drop some, scramble indices in others.

        Returns the number of affected packets.
        """

        def mutate(message: Message) -> Message | None:
            if self._rng.random() < drop_probability:
                return None
            changes: dict[str, object] = {}
            if hasattr(message, "ssn"):
                changes["ssn"] = self._wild_ts()
            if hasattr(message, "sns"):
                changes["sns"] = self._wild_ts()
            if hasattr(message, "entry"):
                changes["entry"] = TimestampedValue(
                    ts=self._wild_ts(), value=b"\xba\xad"
                )
            if not changes:
                return message
            try:
                return dataclass_replace(message, **changes)
            except TypeError:
                return message

        affected = 0
        for channel in self._cluster.network.channels():
            affected += channel.corrupt_in_flight(mutate)
        return affected

    def flush_channels(self) -> int:
        """Drop every in-flight packet (a clean-slate arbitrary state)."""
        return sum(
            channel.drop_all_in_flight()
            for channel in self._cluster.network.channels()
        )

    # -- combined ----------------------------------------------------------------------------

    def scramble_everything(self, node_ids: Iterable[int] | None = None) -> None:
        """The full arbitrary-state treatment of the paper's fault model."""
        self.corrupt_write_indices(node_ids)
        self.corrupt_snapshot_indices(node_ids)
        self.corrupt_registers(node_ids)
        self.corrupt_pending_tasks(node_ids)
        self.corrupt_consensus(node_ids)
        self.scramble_channels()
