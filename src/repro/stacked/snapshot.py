"""Stacked snapshot baseline: double-collect over ABD registers.

The classic construction the paper's related-work section compares
against: run a shared-memory snapshot algorithm (the double-collect scan
of Afek et al.) on top of the ABD register emulation.  A successful scan
is two collects with a write-back after each, i.e. **4 round trips and
≈8(n−1) messages** — versus 1 round trip / 2(n−1) messages for
Delporte-Gallet et al.'s non-stacking snapshot.  Benchmark E3 regenerates
exactly that comparison.

Like the DGFR non-blocking algorithm, the scan is non-blocking only: a
write landing between the two collects forces another scan round.
"""

from __future__ import annotations

from typing import Any

from repro.config import ClusterConfig
from repro.core.base import SnapshotResult
from repro.core.register import RegisterArray, TimestampedValue
from repro.errors import ReproError
from repro.net.node import Process
from repro.sim.kernel import Kernel
from repro.stacked.abd import AbdRegisterLayer

__all__ = ["StackedSnapshot"]


class StackedSnapshot(Process):
    """Snapshot object via the register-emulation stack (baseline)."""

    def __init__(
        self,
        node_id: int,
        kernel: Kernel,
        network: Any,
        config: ClusterConfig,
    ) -> None:
        super().__init__(node_id, kernel, network, config)
        self.abd = AbdRegisterLayer(self)

    def initialize_state(self) -> None:
        """Writer timestamp and the replicated array (owned by the layer)."""
        self.ts: int = 0
        self.reg = RegisterArray(self.config.n)
        self._ops_in_flight: set[str] = set()

    # -- operations -----------------------------------------------------------

    async def write(self, value: Any) -> int:
        """ABD write: install locally, replicate to a majority (1 RT)."""
        self._begin("write")
        try:
            self.ts += 1
            self.reg[self.node_id] = TimestampedValue(self.ts, value)
            await self.abd.store(self.reg.copy())
            return self.ts
        finally:
            self._end("write")

    async def snapshot(self) -> SnapshotResult:
        """Double-collect scan with write-backs (4 RTs when clean).

        Each scan round: collect → write-back → collect → write-back; the
        scan succeeds when both collects agree (no interfering write).
        The write-backs make the returned view visible to a majority
        before the operation returns, which is what gives atomicity.
        """
        self._begin("snapshot")
        try:
            while True:
                first = await self.abd.collect()
                await self.abd.store(first)
                second = await self.abd.collect()
                await self.abd.store(second)
                if first == second:
                    return SnapshotResult.from_registers(second)
        finally:
            self._end("snapshot")

    # -- invocation discipline ----------------------------------------------------

    def _begin(self, name: str) -> None:
        if name in self._ops_in_flight:
            raise ReproError(
                f"node {self.node_id}: {name} already in progress; the model "
                "assumes one sequential client per node"
            )
        self._ops_in_flight.add(name)

    def _end(self, name: str) -> None:
        self._ops_in_flight.discard(name)
