"""ABD-style SWMR register emulation layer (Attiya, Bar-Noy & Dolev).

The related-work comparison in the paper (Section 1) contrasts
Delporte-Gallet et al.'s *non-stacking* approach with the classic stack:
emulate SWMR atomic registers over message passing [ABD 95], then run a
shared-memory snapshot algorithm [AADGMS 93] on top.  Delporte-Gallet et
al. report that the stacked approach costs ≈8n messages and 4 round trips
per snapshot versus their 2n messages and a single round trip.

This module provides the register-emulation layer used by
:mod:`repro.stacked.snapshot`: quorum-replicated storage of the register
array with two primitives —

* :meth:`AbdRegisterLayer.store` — push an array (or one entry) to a
  majority (the ABD write phase / read write-back phase);
* :meth:`AbdRegisterLayer.collect` — read the freshest array from a
  majority (the ABD read query phase).

Each primitive is one round trip of 2(n−1) messages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.register import RegisterArray
from repro.net.message import Message
from repro.net.node import Process
from repro.net.quorum import AckCollector, broadcast_until

__all__ = [
    "AbdRegisterLayer",
    "AbdStoreMessage",
    "AbdStoreAckMessage",
    "AbdCollectMessage",
    "AbdCollectAckMessage",
]


@dataclass(frozen=True)
class AbdStoreMessage(Message):
    """Write/write-back phase: replicate the caller's array view."""

    KIND = "ABD_STORE"
    reg: RegisterArray
    tag: int


@dataclass(frozen=True)
class AbdStoreAckMessage(Message):
    """Acknowledgement of one store tag."""

    KIND = "ABD_STOREack"
    tag: int


@dataclass(frozen=True)
class AbdCollectMessage(Message):
    """Read query phase: ask for the replier's freshest array."""

    KIND = "ABD_COLLECT"
    tag: int


@dataclass(frozen=True)
class AbdCollectAckMessage(Message):
    """Reply to a collect: the replier's current array."""

    KIND = "ABD_COLLECTack"
    reg: RegisterArray
    tag: int


class AbdRegisterLayer:
    """Quorum-replicated register array attached to one process.

    The layer owns the process's ``reg`` buffer (created if absent) and
    registers the four ABD message handlers on it.
    """

    def __init__(self, process: Process) -> None:
        self._process = process
        if not hasattr(process, "reg"):
            process.reg = RegisterArray(process.config.n)
        self._tags = itertools.count(1)
        process.register_handler(AbdStoreMessage.KIND, self._on_store)
        process.register_handler(AbdCollectMessage.KIND, self._on_collect)

    @property
    def reg(self) -> RegisterArray:
        """The locally replicated register array."""
        return self._process.reg

    # -- server side -----------------------------------------------------------

    def _on_store(self, sender: int, message: AbdStoreMessage) -> None:
        self._process.reg.merge_from(message.reg)
        self._process.send(sender, AbdStoreAckMessage(tag=message.tag))

    def _on_collect(self, sender: int, message: AbdCollectMessage) -> None:
        self._process.send(
            sender,
            AbdCollectAckMessage(
                reg=self._process.reg.copy(), tag=message.tag
            ),
        )

    # -- client side -------------------------------------------------------------

    async def store(self, reg: RegisterArray) -> None:
        """Replicate ``reg`` to a majority: one round trip, 2(n−1) messages."""
        self._process.reg.merge_from(reg)
        tag = next(self._tags) * self._process.config.n + self._process.node_id
        frozen = reg.copy()
        with AckCollector(
            self._process,
            AbdStoreAckMessage.KIND,
            self._process.majority,
            match=lambda s, m: m.tag == tag,
        ) as collector:
            await broadcast_until(
                self._process,
                lambda: AbdStoreMessage(reg=frozen, tag=tag),
                collector,
            )

    async def collect(self) -> RegisterArray:
        """Read the freshest majority view: one round trip, 2(n−1) messages."""
        tag = next(self._tags) * self._process.config.n + self._process.node_id
        with AckCollector(
            self._process,
            AbdCollectAckMessage.KIND,
            self._process.majority,
            match=lambda s, m: m.tag == tag,
        ) as collector:
            await broadcast_until(
                self._process, lambda: AbdCollectMessage(tag=tag), collector
            )
            replies = collector.reply_messages()
        view = self._process.reg.copy()
        for message in replies:
            view.merge_from(message.reg)
        self._process.reg.merge_from(view)
        return view
