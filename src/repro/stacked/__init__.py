"""The stacked baseline: ABD register emulation + double-collect snapshot."""

from repro.stacked.abd import AbdRegisterLayer
from repro.stacked.snapshot import StackedSnapshot

__all__ = ["AbdRegisterLayer", "StackedSnapshot"]
