"""The paper's Algorithm 3: self-stabilizing always-terminating snapshot.

Differences from the Algorithm 2 baseline, following Section 4:

* **Bounded task state.**  Instead of the unbounded ``repSnap`` table,
  each node keeps one :class:`PendingTask` entry per node —
  ``pndTsk[k] = (sns, vc, fnl)`` — holding the most recent snapshot task
  it knows of node ``k``: its index ``sns``, the vector clock ``vc``
  sampled when the task was first observed to be interfered with, and the
  final result ``fnl`` (or ``⊥`` while running).
* **No reliable broadcast.**  Task results are delivered through an
  emulated *safe register*: the finisher broadcasts ``SAVE`` and waits for
  ``SAVEack`` from a majority (``safeReg``, line 71); any node holding a
  result for a task it sees queried forwards it (line 107).
* **The δ knob.**  Other nodes join ("steal") a task only after observing
  at least δ write operations concurrent with it (measured as growth of
  the register vector clock since the task's ``vc`` sample).  ``δ = 0``
  reproduces Algorithm 2's always-blocking O(n²)-message behaviour;
  ``δ = ∞`` reproduces Algorithm 1's O(n)-message non-blocking behaviour;
  finite ``δ > 0`` buys an O(δ)-cycle termination bound (Theorem 3) at
  O(n) messages per uncontended snapshot.
* **Many-jobs stealing.**  A single run of ``baseSnapshot`` serves *all*
  currently eligible tasks (the set Δ, line 70): one interference-free
  round resolves every one of them with a single ``safeReg`` call.
* **Self-stabilization.**  The do-forever loop discards stale acks,
  re-asserts index consistency (``ts``, ``sns``), clears illogical vector
  clocks and corrupted own-task entries, and gossips register entries and
  indices — giving the O(1)-cycle recovery of Theorem 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.config import ClusterConfig
from repro.core.base import SnapshotAlgorithm, SnapshotResult
from repro.core.register import RegisterArray, TimestampedValue
from repro.net.message import Message
from repro.net.quorum import AckCollector, broadcast_until
from repro.sim.kernel import Kernel

__all__ = [
    "SelfStabilizingAlwaysTerminating",
    "PendingTask",
    "TaskDescriptor",
    "GossipMessage3",
    "SnapshotMessage3",
    "SnapshotAckMessage3",
    "SaveMessage",
    "SaveAckMessage",
]


@dataclass(slots=True)
class PendingTask:
    """One ``pndTsk`` entry: ``(sns, vc, fnl)`` (line 68).

    ``sns`` is the task index (0 = no task ever observed), ``vc`` the
    vector-clock sample time-stamping the task's observed start (``⊥``
    until the task survives an interfered round), ``fnl`` the final
    snapshot result (``⊥`` while the task is unresolved).
    """

    sns: int = 0
    vc: tuple[int, ...] | None = None
    fnl: RegisterArray | None = None

    def copy(self) -> "PendingTask":
        """Independent copy (results are immutable once stored)."""
        return PendingTask(sns=self.sns, vc=self.vc, fnl=self.fnl)


@dataclass(frozen=True, slots=True)
class TaskDescriptor:
    """A task triple ``(k, sns, vc)`` as carried in SNAPSHOT messages."""

    node: int
    sns: int
    vc: tuple[int, ...] | None


@dataclass(frozen=True)
class GossipMessage3(Message):
    """``GOSSIP(reg[k], pndTsk[k].sns)`` to node k (line 78) — O(ν) bits.

    Carries the *receiver's* own register entry and the sender's view of
    the *receiver's* snapshot-task index.  The receiver absorbs both
    maxima, healing a corrupted-low ``ts`` and ``sns`` (the paper's
    ``max{sns, snsJ}`` on line 99; Definition 1(iii) requires
    ``pndTsk_j[i].sns ≤ sns_i``, so the gossiped index must be the
    sender's view of the receiver's task, not the sender's own counter —
    absorbing the sender's own ``sns`` would manufacture phantom tasks at
    every peer).
    """

    KIND = "GOSSIP"
    entry: TimestampedValue
    task_sns: int


@dataclass(frozen=True)
class SnapshotMessage3(Message):
    """``SNAPSHOT(S ∩ Δ, reg, ssn)``: query carrying the served tasks."""

    KIND = "SNAPSHOT"
    tasks: tuple[TaskDescriptor, ...]
    reg: RegisterArray
    ssn: int


@dataclass(frozen=True)
class SnapshotAckMessage3(Message):
    """``SNAPSHOTack(reg, ssn)`` (line 107)."""

    KIND = "SNAPSHOTack"
    reg: RegisterArray
    ssn: int


@dataclass(frozen=True)
class SaveMessage(Message):
    """``SAVE(A)``: task results ``(k, s, r)`` to store (lines 71, 95)."""

    KIND = "SAVE"
    entries: tuple[tuple[int, int, RegisterArray], ...]


@dataclass(frozen=True)
class SaveAckMessage(Message):
    """``SAVEack({(k, s)})``: acknowledgment of stored results (line 97)."""

    KIND = "SAVEack"
    ids: frozenset[tuple[int, int]]


class SelfStabilizingAlwaysTerminating(SnapshotAlgorithm):
    """Algorithm 3; δ comes from ``config.delta`` (∞ = UNBOUNDED_DELTA)."""

    SELF_STABILIZING = True

    def __init__(
        self,
        node_id: int,
        kernel: Kernel,
        network: Any,
        config: ClusterConfig,
    ) -> None:
        super().__init__(node_id, kernel, network, config)
        self.register_handler(SnapshotMessage3.KIND, self._on_snapshot_query)
        self.register_handler(SaveMessage.KIND, self._on_save)
        self.register_handler(GossipMessage3.KIND, self._on_gossip)

    def initialize_state(self) -> None:
        """Line 68 (optional in the self-stabilizing context)."""
        super().initialize_state()
        self.ssn: int = 0
        self.sns: int = 0
        self.write_pending: Any = None
        self.pnd_tsk: list[PendingTask] = [
            PendingTask() for _ in range(self.config.n)
        ]
        self._changed = self.kernel.create_event()
        #: Observability hook: callables invoked as ``listener(process,
        #: foreign_tasks)`` when a baseSnapshot call starts serving a
        #: *foreign* task — i.e. a write-blocking helping episode begins;
        #: ``foreign_tasks`` is the [(owner, sns), …] being helped.
        #: Used by experiment E11.
        self.helping_listeners: list = []
        self.helping_episodes: int = 0

    # -- macros (lines 69–72) --------------------------------------------------------

    def vc_now(self) -> tuple[int, ...]:
        """Line 69: the vector-clock view of ``reg`` (timestamps only)."""
        return self.reg.vector_clock()

    def _writes_observed_since(self, vc: tuple[int, ...]) -> float:
        """Σ_ℓ VC[ℓ] − vc[ℓ]: writes observed since the sample ``vc``."""
        return sum(self.vc_now()) - sum(vc)

    def delta_set(self) -> dict[int, TaskDescriptor]:
        """Line 70: the set Δ of snapshot tasks eligible for service now.

        A task of another node ``k`` is eligible when unresolved and
        either δ = 0 (serve everything, Algorithm 2 style) or at least δ
        writes were observed since its ``vc`` sample.  The node's own
        unresolved task is always eligible.  Tasks with ``sns = 0`` never
        exist legitimately (operation indices start at 1), so they are
        excluded — matching the ``sns > 0`` guards in the paper.
        """
        delta = self.config.delta
        eligible: dict[int, TaskDescriptor] = {}
        for k, task in enumerate(self.pnd_tsk):
            if task.fnl is not None or task.sns <= 0:
                continue
            if k == self.node_id:
                eligible[k] = TaskDescriptor(k, task.sns, task.vc)
                continue
            if delta == 0:
                eligible[k] = TaskDescriptor(k, task.sns, task.vc)
            elif (
                task.vc is not None
                and delta <= self._writes_observed_since(task.vc)
            ):
                eligible[k] = TaskDescriptor(k, task.sns, task.vc)
        return eligible

    async def safe_reg(self, entries: list[tuple[int, int, RegisterArray]]) -> None:
        """Line 71: store results in the emulated safe register.

        Broadcast ``SAVE(A)`` until a majority acknowledges exactly the
        ids in ``A`` — a majority intersection then guarantees any future
        reader of the task encounters the result.
        """
        ids = frozenset((k, s) for (k, s, _r) in entries)
        wire_entries = tuple(entries)

        def matches(sender: int, msg: Message) -> bool:
            return msg.ids == ids

        with AckCollector(
            self, SaveAckMessage.KIND, self.majority, match=matches
        ) as collector:
            await broadcast_until(
                self, lambda: SaveMessage(entries=wire_entries), collector
            )

    # -- change notification ------------------------------------------------------------

    def _notify(self) -> None:
        self._changed.set()

    async def _wait_until(self, condition: Callable[[], bool]) -> None:
        while not condition():
            self._changed.clear()
            await self._changed.wait()

    # -- the do-forever loop (lines 73–80) ------------------------------------------------

    async def do_forever_iteration(self) -> None:
        """Cleanup, gossip, then serve pending write and eligible tasks."""
        # Line 74: stale SNAPSHOTack replies are structurally discarded —
        # collectors filter on the current ssn and store nothing else.
        # Line 75: heal the operation indices from local evidence.  Each
        # branch fires only when the cleanup actually changed state — a
        # corrupted-state detection, counted for E7/E8.
        obs = self.obs
        reg_ts = self.reg[self.node_id].ts
        if self.ts < reg_ts:
            self.ts = reg_ts
            if obs is not None:
                obs.ts_heals += 1
        task_sns = self.pnd_tsk[self.node_id].sns
        if self.sns < task_sns:
            self.sns = task_sns
            if obs is not None:
                obs.sns_heals += 1
        # Line 76: clear vector clocks that could not have been sampled
        # from any past register state (they exceed the current VC).
        vc = self.vc_now()
        for task in self.pnd_tsk:
            if task.vc is not None and any(
                sample > current for sample, current in zip(task.vc, vc)
            ):
                task.vc = None
                if obs is not None:
                    obs.vc_clears += 1
        # Line 77: re-assert the own-task invariant sns = pndTsk[i].sns.
        mine = self.pnd_tsk[self.node_id]
        if self.sns != mine.sns:
            self.pnd_tsk[self.node_id] = PendingTask(sns=self.sns)
            if obs is not None:
                obs.task_repairs += 1
            self._notify()
        # Line 78: gossip each peer its own entry and task index.
        for peer in self.peers():
            self.send(
                peer,
                GossipMessage3(
                    entry=self.reg[peer],
                    task_sns=self.pnd_tsk[peer].sns,
                ),
            )
        # Line 79: serve the pending write task first.
        if self.write_pending is not None:
            value = self.write_pending
            await self.base_write(value)
            self.write_pending = None
            self._notify()
        # Line 80: serve every currently eligible snapshot task.  The
        # sample S is a set of (node, sns) task identities: the paper's
        # S ∩ Δ intersects *triples*, so a task whose sns advances while
        # being served drops out of the served set — otherwise a view
        # computed for task s could be stored as the result of the newer
        # task s+1, which would violate real-time order.
        eligible = self.delta_set()
        if eligible:
            await self.base_snapshot(
                frozenset(
                    (k, descriptor.sns) for k, descriptor in eligible.items()
                )
            )

    # -- operations (lines 81–83) ------------------------------------------------------------

    async def write(self, value: Any) -> int:
        """Line 81: deposit the value; the loop's baseWrite serves it."""
        self._begin_operation("write")
        try:
            self.write_pending = value
            if self.obs is not None:
                self.obs.phase("write.deposited")
            self._notify()
            await self._wait_until(lambda: self.write_pending is None)
            return self.reg[self.node_id].ts
        finally:
            self._end_operation("write")

    async def snapshot(self) -> SnapshotResult:
        """Lines 82–83: register the task, wait for its final result."""
        self._begin_operation("snapshot")
        try:
            self.sns += 1
            self.pnd_tsk[self.node_id] = PendingTask(sns=self.sns)
            if self.obs is not None:
                self.obs.phase("snapshot.task_registered")
            self._notify()
            mine = lambda: self.pnd_tsk[self.node_id]  # noqa: E731
            await self._wait_until(lambda: mine().fnl is not None)
            return SnapshotResult.from_registers(mine().fnl)
        finally:
            self._end_operation("snapshot")

    # -- baseSnapshot (lines 85–94) --------------------------------------------------------------

    def _served_now(
        self, sampled: frozenset[tuple[int, int]]
    ) -> dict[int, TaskDescriptor]:
        """The dynamic ``S ∩ Δ``: sampled task identities still eligible.

        Matches on ``(node, sns)`` so a task superseded by a newer
        invocation (higher sns) leaves the served set immediately.
        """
        return {
            k: descriptor
            for k, descriptor in self.delta_set().items()
            if (k, descriptor.sns) in sampled
        }

    async def base_snapshot(self, sampled: frozenset[tuple[int, int]]) -> None:
        """Serve the sampled tasks until none remains eligible here.

        The outer loop runs query rounds; an interference-free round
        (``prev = reg``) resolves every still-eligible sampled task with
        one ``safeReg`` call (many-jobs stealing).  An interfered round
        samples the vector clock into the own task's ``vc`` (line 93),
        which is what lets other nodes count concurrent writes against δ.
        The outer loop exits early once only the own task remains and δ
        concurrent writes have been observed — control returns to the
        do-forever loop, where every node's Δ now includes the task and
        the cluster-wide helping scheme finishes it (Theorem 3).
        """
        i = self.node_id
        episode_reported = False
        while True:
            foreign = [
                (k, self.pnd_tsk[k].sns)
                for k in self._served_now(sampled)
                if k != i
            ]
            if not episode_reported and foreign:
                episode_reported = True
                self.helping_episodes += 1
                for listener in self.helping_listeners:
                    listener(self, foreign)
            self.ssn += 1
            prev = self.reg.copy()
            await self._query_round(sampled)
            served = self._served_now(sampled)
            if prev == self.reg and served:
                await self.safe_reg(
                    [
                        (k, self.pnd_tsk[k].sns, prev.copy())
                        for k in sorted(served)
                    ]
                )
            elif i in served and self.pnd_tsk[i].vc is None:
                self.pnd_tsk[i].vc = self.vc_now()
                if self.obs is not None:
                    self.obs.phase("snapshot.interference_observed")
            # Line 94: the outer until.
            served = self._served_now(sampled)
            if not served:
                return
            if set(served) == {i}:
                mine = self.pnd_tsk[i]
                if (
                    mine.sns > 0
                    and mine.fnl is None
                    and mine.vc is not None
                    and self.config.delta <= self._writes_observed_since(mine.vc)
                ):
                    if self.obs is not None:
                        self.obs.phase("snapshot.delegated")
                    return

    async def _query_round(self, sampled: frozenset[int]) -> None:
        """Lines 87–90: one ``repeat broadcast SNAPSHOT until …`` round.

        Ends when the served set empties (results arrived via SAVE) or a
        majority of ssn-matching acks arrived; then merges the replies.
        """

        def matches(sender: int, msg: Message) -> bool:
            return msg.ssn == self.ssn

        interval = self.config.retransmit_interval
        next_send = -math.inf
        with AckCollector(
            self, SnapshotAckMessage3.KIND, self.majority, match=matches
        ) as collector:
            while True:
                served = self._served_now(sampled)
                if not served or collector.satisfied:
                    break
                await self.gate.passthrough()
                # Re-broadcast at most once per retransmit interval; wakes
                # in between (SAVE arrivals shrinking the served set, acks)
                # only re-evaluate the exit conditions.
                now = self.kernel.now
                if now >= next_send:
                    if next_send != -math.inf and self.obs is not None:
                        # Re-broadcasts after the first are retransmissions,
                        # same accounting as quorum.broadcast_until.
                        self.obs.retransmit()
                    self.broadcast(
                        SnapshotMessage3(
                            tasks=tuple(served[k] for k in sorted(served)),
                            reg=self.reg.copy(),
                            ssn=self.ssn,
                        )
                    )
                    next_send = now + interval
                self._changed.clear()
                await self.kernel.first_of(
                    collector.wait(),
                    self._changed.wait(),
                    timeout=max(next_send - self.kernel.now, 0.0) or interval,
                )
            replies = collector.reply_messages()
        self.merge(msg.reg for msg in replies)

    # -- server side (lines 95–107) -----------------------------------------------------------------

    def _on_save(self, sender: int, message: SaveMessage) -> None:
        """Lines 95–97: adopt newer results, acknowledge the stored ids."""
        for k, s, result in message.entries:
            task = self.pnd_tsk[k]
            if task.sns < s or (task.sns == s and task.fnl is None):
                task.sns = s
                task.fnl = result
        self.send(
            sender,
            SaveAckMessage(
                ids=frozenset((k, s) for (k, s, _r) in message.entries)
            ),
        )
        self._notify()

    def _on_gossip(self, sender: int, message: GossipMessage3) -> None:
        """Lines 98–99: merge own entry; absorb operation indices."""
        i = self.node_id
        obs = self.obs
        if obs is not None:
            # In a legitimate execution our own entry and sns are always
            # at least as fresh as any peer's view of them, so either
            # comparison firing means gossip is healing corrupted state.
            if message.entry.ts > self.reg[i].ts:
                obs.ts_heals += 1
            if message.task_sns > self.sns:
                obs.sns_heals += 1
        self.reg.merge_entry(i, message.entry)
        self.ts = max(self.ts, self.reg[i].ts)
        self.sns = max(self.sns, message.task_sns)

    def _on_snapshot_query(self, sender: int, message: SnapshotMessage3) -> None:
        """Lines 103–107: merge, adopt task descriptors, ack, and help."""
        self.reg.merge_from(message.reg)
        for descriptor in message.tasks:
            if not 0 <= descriptor.node < self.config.n or descriptor.sns <= 0:
                continue  # corrupted descriptor; ignore
            task = self.pnd_tsk[descriptor.node]
            if task.sns < descriptor.sns or (
                task.sns == descriptor.sns
                and task.vc is None
                and task.fnl is None
            ):
                self.pnd_tsk[descriptor.node] = PendingTask(
                    sns=descriptor.sns, vc=descriptor.vc
                )
        # Line 106: collect results we already hold for the queried tasks.
        help_entries = [
            (d.node, self.pnd_tsk[d.node].sns, self.pnd_tsk[d.node].fnl)
            for d in message.tasks
            if 0 <= d.node < self.config.n
            and self.pnd_tsk[d.node].fnl is not None
        ]
        self.send(
            sender, SnapshotAckMessage3(reg=self.reg.copy(), ssn=message.ssn)
        )
        if help_entries:
            self.send(sender, SaveMessage(entries=tuple(help_entries)))
        self._notify()

    def _on_write(self, sender: int, message: Message) -> None:
        """Write handler (lines 100–102) — as base, plus Δ re-evaluation."""
        super()._on_write(sender, message)
        self._notify()

    def merge(self, received: Iterable[RegisterArray]) -> None:
        """Line 72's merge; register growth may change Δ, so notify."""
        super().merge(received)
        self._notify()

    @property
    def delta(self) -> float:
        """The configured δ (``math.inf`` disables write blocking)."""
        return self.config.delta

    def is_unbounded_delta(self) -> bool:
        """Whether δ = ∞ (Algorithm 1-like behaviour)."""
        return math.isinf(self.config.delta)
