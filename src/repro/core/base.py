"""Shared machinery of the Delporte-Gallet-family snapshot algorithms.

All four algorithms (the DGFR non-blocking and always-terminating
baselines, and their self-stabilizing variants) share:

* the per-node state ``reg`` (an SWMR register-array buffer) and the write
  index ``ts``;
* the ``merge(Rec)`` macro — pointwise lattice join of received register
  arrays, with the self-stabilizing variants additionally absorbing the
  maximum observed own-entry timestamp into ``ts``;
* the server-side WRITE/SNAPSHOT handler skeleton (merge, then ack);
* the client-side ``baseWrite`` — bump ``ts``, install the value locally,
  then ``repeat broadcast WRITE until majority of WRITEack(regJ ⪰ lReg)``.

Concrete algorithms subclass :class:`SnapshotAlgorithm` and add their
snapshot-side logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.config import ClusterConfig
from repro.core.register import RegisterArray, TimestampedValue
from repro.errors import ReproError
from repro.net.message import Message
from repro.net.node import Process
from repro.net.quorum import AckCollector, broadcast_until
from repro.sim.kernel import Kernel

__all__ = [
    "SnapshotAlgorithm",
    "SnapshotResult",
    "WriteMessage",
    "WriteAckMessage",
]


@dataclass(frozen=True, slots=True)
class SnapshotResult:
    """The outcome of a ``snapshot()`` operation.

    Attributes
    ----------
    values:
        One entry per node: the object value last written by that node
        (``None`` where no write has occurred).
    vector_clock:
        The write indices of the returned values — the evidence the
        linearizability checker consumes.
    """

    values: tuple[Any, ...]
    vector_clock: tuple[int, ...]

    @classmethod
    def from_registers(cls, reg: RegisterArray) -> "SnapshotResult":
        """Package a register-array state as an operation result."""
        return cls(values=reg.snapshot_values(), vector_clock=reg.vector_clock())

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class WriteMessage(Message):
    """Client-side ``WRITE(lReg)``: the writer's whole register view."""

    KIND = "WRITE"
    reg: RegisterArray


@dataclass(frozen=True)
class WriteAckMessage(Message):
    """Server-side ``WRITEack(reg)``: the replier's merged register view."""

    KIND = "WRITEack"
    reg: RegisterArray


class SnapshotAlgorithm(Process):
    """Base class: state, merge, write path, and server-side handlers.

    Parameters mirror :class:`~repro.net.node.Process`; subclasses set the
    class attribute :attr:`SELF_STABILIZING` to enable the boxed-code
    additions of the paper (timestamp absorption in ``merge`` and the
    do-forever cleanup/gossip, implemented in the subclasses).
    """

    #: Whether the boxed (self-stabilizing) code lines are active.
    SELF_STABILIZING = False

    def __init__(
        self,
        node_id: int,
        kernel: Kernel,
        network: Any,
        config: ClusterConfig,
    ) -> None:
        super().__init__(node_id, kernel, network, config)
        self.register_handler(WriteMessage.KIND, self._on_write)
        # WRITEack has no server-side action; replies reach ack collectors.

    # -- state ------------------------------------------------------------------

    def initialize_state(self) -> None:
        """Lines 2–4 / 32–35 / 68: indices to zero, registers to ⊥."""
        self.ts: int = 0
        self.reg: RegisterArray = RegisterArray(self.config.n)
        self._ops_in_flight: set[str] = set()

    # -- the merge(Rec) macro -----------------------------------------------------

    def merge(self, received: Iterable[RegisterArray]) -> None:
        """``merge(Rec)``: pointwise join of received register arrays.

        In the self-stabilizing variants the macro additionally raises
        ``ts`` to the largest own-entry timestamp seen (Algorithm 1 line 6
        / Algorithm 3 line 72), which is what heals a corrupted-low ``ts``.
        """
        received = list(received)
        if self.SELF_STABILIZING:
            self.ts = max(
                [self.ts, self.reg[self.node_id].ts]
                + [r[self.node_id].ts for r in received]
            )
        for other in received:
            self.reg.merge_from(other)

    # -- server side -----------------------------------------------------------------

    def _on_write(self, sender: int, message: WriteMessage) -> None:
        """Lines 26–28: merge the writer's view, reply with our own."""
        self.reg.merge_from(message.reg)
        self.send(sender, WriteAckMessage(reg=self.reg.copy()))

    # -- client side write path ----------------------------------------------------------

    async def base_write(self, value: Any) -> int:
        """Lines 13–15 (= ``baseWrite``, lines 48–51/84): one write round.

        Returns the write's timestamp index (useful for histories).
        """
        self.ts += 1
        self.reg[self.node_id] = TimestampedValue(self.ts, value)
        if self.obs is not None:
            self.obs.phase("write.quorum_round")
        l_reg = self.reg.copy()

        def matches(sender: int, msg: Message) -> bool:
            return l_reg.precedes_or_equals(msg.reg)

        with AckCollector(
            self, WriteAckMessage.KIND, self.majority, match=matches
        ) as collector:
            await broadcast_until(
                self, lambda: WriteMessage(reg=self.reg.copy()), collector
            )
            replies = collector.reply_messages()
        self.merge(msg.reg for msg in replies)
        return l_reg[self.node_id].ts

    # -- operation-invocation discipline --------------------------------------------------

    def _begin_operation(self, name: str) -> None:
        """Enforce the paper's sequential-client-per-node model."""
        if name in self._ops_in_flight:
            raise ReproError(
                f"node {self.node_id}: {name} already in progress; the model "
                "assumes one sequential client per node"
            )
        self._ops_in_flight.add(name)

    def _end_operation(self, name: str) -> None:
        self._ops_in_flight.discard(name)
