"""Register value types and the paper's ``⪯`` lattice (Algorithm 1, line 1).

The snapshot object emulates an array of Single-Writer/Multi-Reader (SWMR)
registers.  Each entry is a pair ``(v, ts)`` where ``v`` is an object value
and ``ts`` an unbounded write-operation index.  The paper orders pairs by
timestamp only::

    (•, t) ⪯ (•, t')  ⟺  t ≤ t'

and orders register arrays pointwise.  Because each entry is written by a
single writer, two pairs for the same entry with equal timestamps denote
the same write, so ordering by ``ts`` alone is sound.

:class:`TimestampedValue` is immutable; :class:`RegisterArray` is the
mutable per-node buffer ``reg`` with the merge operation used throughout
Algorithms 1–3 (pointwise join).  The join makes register states a
join-semilattice, which is what the self-stabilizing variants rely on: any
corrupted-but-lattice-consistent information is absorbed by ``max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import ConfigurationError

__all__ = ["TimestampedValue", "BOTTOM", "RegisterArray"]


@dataclass(frozen=True, slots=True)
class TimestampedValue:
    """An SWMR register value: the pair ``(v, ts)`` of the paper.

    Attributes
    ----------
    ts:
        Write-operation index.  ``0`` is reserved for the initial ``⊥``.
    value:
        The written object value (opaque to the algorithms; benchmarks use
        ``bytes`` so that message-size accounting is meaningful).
    """

    ts: int
    value: Any = None

    def __post_init__(self) -> None:
        if self.ts < 0:
            raise ConfigurationError(f"timestamp must be non-negative, got {self.ts}")

    def precedes_or_equals(self, other: "TimestampedValue") -> bool:
        """The paper's ``⪯`` on pairs: compare write indices only."""
        return self.ts <= other.ts

    def max_with(self, other: "TimestampedValue") -> "TimestampedValue":
        """The join ``max⪯``: keep whichever pair has the larger index."""
        return other if self.ts < other.ts else self

    @property
    def is_bottom(self) -> bool:
        """Whether this is the initial value ``⊥`` (no write has occurred)."""
        return self.ts == 0


#: The initial register value ``⊥`` — smaller than any written value.
BOTTOM = TimestampedValue(0, None)


class RegisterArray:
    """The per-node buffer ``reg``: one :class:`TimestampedValue` per node.

    Supports the pointwise lattice operations the algorithms use:

    * ``reg[k] ← max(reg[k], other[k])`` for all ``k`` — :meth:`merge_from`;
    * pointwise comparison ``⪯`` — :meth:`precedes_or_equals`;
    * equality (used in the ``prev = reg`` termination test of snapshot);
    * a vector-clock view of the timestamps (Algorithm 3, line 69).
    """

    __slots__ = ("_entries",)

    def __init__(self, n_or_entries: int | Iterable[TimestampedValue]) -> None:
        if isinstance(n_or_entries, int):
            if n_or_entries <= 0:
                raise ConfigurationError(
                    f"register array needs at least one entry, got {n_or_entries}"
                )
            self._entries: list[TimestampedValue] = [BOTTOM] * n_or_entries
        else:
            entries = list(n_or_entries)
            if not entries:
                raise ConfigurationError("register array needs at least one entry")
            for entry in entries:
                if not isinstance(entry, TimestampedValue):
                    raise ConfigurationError(
                        f"register array entries must be TimestampedValue, "
                        f"got {entry!r}"
                    )
            self._entries = entries

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, k: int) -> TimestampedValue:
        return self._entries[k]

    def __setitem__(self, k: int, value: TimestampedValue) -> None:
        if not isinstance(value, TimestampedValue):
            raise ConfigurationError(f"expected TimestampedValue, got {value!r}")
        self._entries[k] = value

    def __iter__(self) -> Iterator[TimestampedValue]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterArray):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(tuple(self._entries))

    def __repr__(self) -> str:
        inner = ", ".join(f"({e.value!r},{e.ts})" for e in self._entries)
        return f"RegisterArray[{inner}]"

    # -- lattice operations ----------------------------------------------------

    def precedes_or_equals(self, other: "RegisterArray") -> bool:
        """Pointwise ``⪯``: every entry's index is ≤ the other's."""
        self._check_compatible(other)
        return all(
            mine.precedes_or_equals(theirs)
            for mine, theirs in zip(self._entries, other._entries)
        )

    def strictly_precedes(self, other: "RegisterArray") -> bool:
        """The paper's ``≺``: ``⪯`` and not equal."""
        return self.precedes_or_equals(other) and self != other

    def merge_entry(self, k: int, candidate: TimestampedValue) -> None:
        """``reg[k] ← max⪯(reg[k], candidate)``."""
        self._entries[k] = self._entries[k].max_with(candidate)

    def merge_from(self, other: "RegisterArray") -> None:
        """Pointwise join with another array (lines 27/30/61/64/101/104)."""
        self._check_compatible(other)
        self._entries = [
            mine.max_with(theirs)
            for mine, theirs in zip(self._entries, other._entries)
        ]

    def copy(self) -> "RegisterArray":
        """An independent copy (the ``let prev := reg`` / ``lReg := reg``)."""
        return RegisterArray(list(self._entries))

    def vector_clock(self) -> tuple[int, ...]:
        """The timestamps-only view ``VC`` (Algorithm 3, line 69)."""
        return tuple(entry.ts for entry in self._entries)

    def snapshot_values(self) -> tuple[Any, ...]:
        """The object values, as a snapshot operation returns them."""
        return tuple(entry.value for entry in self._entries)

    def max_timestamp(self) -> int:
        """Largest write index present — used by the bounded-counter wrapper."""
        return max(entry.ts for entry in self._entries)

    def _check_compatible(self, other: "RegisterArray") -> None:
        if len(other) != len(self._entries):
            raise ConfigurationError(
                f"register arrays of different sizes: "
                f"{len(self._entries)} vs {len(other)}"
            )
