"""The paper's Algorithm 1: self-stabilizing non-blocking snapshot object.

Extends the DGFR non-blocking baseline with the boxed code lines:

* ``merge`` additionally absorbs the largest observed own-entry timestamp
  into ``ts`` (line 6);
* a do-forever loop that discards stale ``SNAPSHOTack`` replies (line 9),
  re-asserts ``ts ≥ reg[i].ts`` (line 10), and gossips ``reg[k]`` to every
  ``p_k`` (line 11) — O(n²) gossip messages per cycle, each of O(ν) bits;
* a ``GOSSIP`` handler that merges the arriving own-entry value and
  timestamp (lines 24–25).

Together these guarantee Theorem 1: within O(1) asynchronous cycles of a
fair execution, ``ts_i`` dominates every timestamp attributed to ``p_i``
anywhere in the system, after which a fresh write's ``ts+1`` is globally
maximal and the object behaves exactly like the baseline.  Benchmark E7
measures this recovery; E2 measures the gossip overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dgfr_nonblocking import DgfrNonBlocking
from repro.core.register import TimestampedValue
from repro.net.message import Message

__all__ = ["SelfStabilizingNonBlocking", "GossipMessage"]


@dataclass(frozen=True)
class GossipMessage(Message):
    """``GOSSIP(reg[k])``: p_k's own entry as the sender knows it (line 11).

    Payload is a single ``(v, ts)`` pair — the O(ν)-bit message of
    Contribution (1).
    """

    KIND = "GOSSIP"
    entry: TimestampedValue


class SelfStabilizingNonBlocking(DgfrNonBlocking):
    """Algorithm 1 with the boxed self-stabilizing additions enabled."""

    SELF_STABILIZING = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.register_handler(GossipMessage.KIND, self._on_gossip)

    # -- do-forever loop (lines 8–11) ---------------------------------------------

    async def do_forever_iteration(self) -> None:
        """One body of the do-forever loop: cleanup and gossip.

        Line 9's ``delete SNAPSHOTack(-, ssn')`` is structural in this
        implementation: ack collectors filter on the current ``ssn`` and
        hold no non-matching replies, so stale acks are never stored.
        Line 10 heals a ``ts`` that a transient fault pushed below the
        node's own register timestamp; line 11 disseminates every node's
        own-entry so a corrupted-low entry anywhere is healed within a
        round trip.
        """
        reg_ts = self.reg[self.node_id].ts
        if self.ts < reg_ts:
            # The branch only fires when local evidence contradicts ``ts``
            # (a transient fault or restart pushed it low) — that is a
            # corrupted-state detection, counted for E7/E8.
            self.ts = reg_ts
            if self.obs is not None:
                self.obs.ts_heals += 1
        for peer in self.peers():
            self.send(peer, GossipMessage(entry=self.reg[peer]))

    # -- gossip server side (lines 24–25) --------------------------------------------

    def _on_gossip(self, sender: int, message: GossipMessage) -> None:
        """Merge the arriving own-entry and re-absorb its timestamp."""
        i = self.node_id
        if self.obs is not None and message.entry.ts > self.reg[i].ts:
            # A peer knows a larger own-entry timestamp than we do: in a
            # legitimate execution our local entry is always freshest (it
            # is installed before broadcast), so this is gossip healing a
            # corrupted-low entry.
            self.obs.ts_heals += 1
        self.reg.merge_entry(i, message.entry)
        self.ts = max(self.ts, self.reg[i].ts)
