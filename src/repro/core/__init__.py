"""Core snapshot-object algorithms (the paper's contribution + baselines).

* :class:`~repro.core.dgfr_nonblocking.DgfrNonBlocking` — Delporte-Gallet
  et al.'s non-blocking algorithm (baseline).
* :class:`~repro.core.ss_nonblocking.SelfStabilizingNonBlocking` — the
  paper's Algorithm 1.
* :class:`~repro.core.dgfr_always.DgfrAlwaysTerminating` — Delporte-Gallet
  et al.'s always-terminating algorithm (Algorithm 2, baseline).
* :class:`~repro.core.ss_always.SelfStabilizingAlwaysTerminating` — the
  paper's Algorithm 3 (with the δ latency/communication knob).
* :class:`~repro.core.amortized.AmortizedSnapshot` — Algorithm 1 with
  Garg-et-al.-style operation batching: concurrent local operations
  share quorum rounds, amortized O(1) rounds per operation.
"""

from repro.core.amortized import AmortizedSnapshot
from repro.core.base import SnapshotAlgorithm, SnapshotResult
from repro.core.cluster import ALGORITHMS
from repro.core.dgfr_always import DgfrAlwaysTerminating
from repro.core.dgfr_nonblocking import DgfrNonBlocking
from repro.core.register import BOTTOM, RegisterArray, TimestampedValue
from repro.core.ss_always import SelfStabilizingAlwaysTerminating
from repro.core.ss_nonblocking import SelfStabilizingNonBlocking

__all__ = [
    "ALGORITHMS",
    "AmortizedSnapshot",
    "BOTTOM",
    "DgfrAlwaysTerminating",
    "DgfrNonBlocking",
    "RegisterArray",
    "SelfStabilizingAlwaysTerminating",
    "SelfStabilizingNonBlocking",
    "SnapshotAlgorithm",
    "SnapshotResult",
    "TimestampedValue",
]
