"""Delporte-Gallet et al.'s non-blocking snapshot algorithm (baseline).

This is the paper's Algorithm 1 *without* the boxed self-stabilizing
additions — the original [DGFR18, Algorithm 1].  Write operations always
terminate (given a live majority); a snapshot operation terminates once it
completes a query round in which no concurrent write changed the register
view (``prev = reg``), so snapshots are guaranteed to terminate only after
write operations cease.

Costs (reproduced by benchmark E1): a write is one round trip of
``2(n-1)`` messages; an uncontended snapshot is one round trip of
``2(n-1)`` messages, each of O(n·ν) bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.config import ClusterConfig
from repro.core.base import SnapshotAlgorithm, SnapshotResult
from repro.core.register import RegisterArray
from repro.net.message import Message
from repro.net.quorum import AckCollector, broadcast_until
from repro.sim.kernel import Kernel

__all__ = ["DgfrNonBlocking", "SnapshotMessage", "SnapshotAckMessage"]


@dataclass(frozen=True)
class SnapshotMessage(Message):
    """Client-side ``SNAPSHOT(reg, ssn)`` query (line 20)."""

    KIND = "SNAPSHOT"
    reg: RegisterArray
    ssn: int


@dataclass(frozen=True)
class SnapshotAckMessage(Message):
    """Server-side ``SNAPSHOTack(reg, ssn)`` reply (line 31)."""

    KIND = "SNAPSHOTack"
    reg: RegisterArray
    ssn: int


class DgfrNonBlocking(SnapshotAlgorithm):
    """The non-self-stabilizing non-blocking snapshot object."""

    SELF_STABILIZING = False

    def __init__(
        self,
        node_id: int,
        kernel: Kernel,
        network: Any,
        config: ClusterConfig,
    ) -> None:
        super().__init__(node_id, kernel, network, config)
        self.register_handler(SnapshotMessage.KIND, self._on_snapshot_query)

    def initialize_state(self) -> None:
        """Line 3: the snapshot operation index joins the shared state."""
        super().initialize_state()
        self.ssn: int = 0

    # -- server side ------------------------------------------------------------

    def _on_snapshot_query(self, sender: int, message: SnapshotMessage) -> None:
        """Lines 29–31: merge the querier's view and echo ours with its ssn."""
        self.reg.merge_from(message.reg)
        self.send(sender, SnapshotAckMessage(reg=self.reg.copy(), ssn=message.ssn))

    # -- client side ------------------------------------------------------------

    async def write(self, value: Any) -> int:
        """Lines 12–16: install ``(v, ts)`` and push it to a majority."""
        self._begin_operation("write")
        try:
            return await self.base_write(value)
        finally:
            self._end_operation("write")

    async def snapshot(self) -> SnapshotResult:
        """Lines 17–23: query rounds until an interference-free round.

        Each round captures ``prev := reg``, runs one majority query with a
        fresh ``ssn``, merges the replies, and returns ``reg`` if no
        concurrent write moved it (``prev = reg``).  With concurrent
        writes the loop may run forever — that is the non-blocking (rather
        than always-terminating) guarantee, demonstrated by benchmark E12.
        """
        self._begin_operation("snapshot")
        try:
            while True:
                prev = self.reg.copy()
                self.ssn += 1
                if self.obs is not None:
                    self.obs.phase("snapshot.query_round")
                await self._query_round()
                if prev == self.reg:
                    return SnapshotResult.from_registers(self.reg)
        finally:
            self._end_operation("snapshot")

    async def _query_round(self) -> None:
        """Lines 20–21: one ``repeat broadcast SNAPSHOT until majority``.

        The ack filter implements line 20's ``ssnJ = ssn`` against the
        *current* value of ``ssn`` — matching the paper's use of the
        mutable variable, which is what heals corrupted in-transit acks in
        the self-stabilizing variant.
        """

        def matches(sender: int, msg: Message) -> bool:
            return msg.ssn == self.ssn

        with AckCollector(
            self, SnapshotAckMessage.KIND, self.majority, match=matches
        ) as collector:
            await broadcast_until(
                self,
                lambda: SnapshotMessage(reg=self.reg.copy(), ssn=self.ssn),
                collector,
            )
            replies = collector.reply_messages()
        self.merge(msg.reg for msg in replies)
