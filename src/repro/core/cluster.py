"""The public facade: a simulated cluster emulating one snapshot object.

:class:`SnapshotCluster` wires together the kernel, the network fabric,
one algorithm instance per node, the metrics collector, the asynchronous
cycle tracker, and the operation-history recorder — everything an
experiment needs.  Most callers use the synchronous helpers::

    cluster = SnapshotCluster("ss-nonblocking", ClusterConfig(n=5))
    cluster.write_sync(0, b"hello")
    result = cluster.snapshot_sync(1)

Coroutine variants (:meth:`write`, :meth:`snapshot`) compose with the
kernel directly for concurrent workloads.
"""

from __future__ import annotations

from typing import Any, Awaitable, Callable

from repro.analysis.cycles import CycleTracker
from repro.analysis.history import SNAPSHOT, WRITE, HistoryRecorder
from repro.analysis.metrics import MetricsCollector
from repro.config import ClusterConfig
from repro.core.base import SnapshotAlgorithm, SnapshotResult
from repro.core.dgfr_always import DgfrAlwaysTerminating
from repro.core.dgfr_nonblocking import DgfrNonBlocking
from repro.core.ss_always import SelfStabilizingAlwaysTerminating
from repro.core.ss_nonblocking import SelfStabilizingNonBlocking
from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.obs.observe import current_session
from repro.sim.kernel import Kernel, SimTask, TieBreak

__all__ = ["SnapshotCluster", "ALGORITHMS", "register_algorithm"]

#: Registry of algorithm names accepted by :class:`SnapshotCluster`.
#: Extended lazily by optional subsystems (stacked baseline, bounded
#: variants) via :func:`register_algorithm`.
ALGORITHMS: dict[str, type] = {
    "dgfr-nonblocking": DgfrNonBlocking,
    "ss-nonblocking": SelfStabilizingNonBlocking,
    "dgfr-always": DgfrAlwaysTerminating,
    "ss-always": SelfStabilizingAlwaysTerminating,
}


def register_algorithm(name: str, algorithm_cls: type) -> None:
    """Add an algorithm to the registry (idempotent for the same class)."""
    existing = ALGORITHMS.get(name)
    if existing is not None and existing is not algorithm_cls:
        raise ConfigurationError(
            f"algorithm name {name!r} already registered to {existing!r}"
        )
    ALGORITHMS[name] = algorithm_cls


class SnapshotCluster:
    """A complete simulated deployment of one snapshot-object algorithm.

    Parameters
    ----------
    algorithm:
        A key of :data:`ALGORITHMS` or an algorithm class.
    config:
        Cluster parameters (defaults to ``ClusterConfig()``).
    start:
        Whether to start every node's do-forever loop immediately.
    tie_break:
        Event-ordering policy for the kernel (``"random"`` models an
        adversarial asynchronous scheduler).
    """

    def __init__(
        self,
        algorithm: str | type[SnapshotAlgorithm] = "ss-nonblocking",
        config: ClusterConfig | None = None,
        start: bool = True,
        tie_break: str = TieBreak.RANDOM,
        kernel: Kernel | None = None,
    ) -> None:
        if isinstance(algorithm, str):
            try:
                algorithm_cls = ALGORITHMS[algorithm]
            except KeyError:
                raise ConfigurationError(
                    f"unknown algorithm {algorithm!r}; "
                    f"choose from {sorted(ALGORITHMS)}"
                ) from None
        else:
            algorithm_cls = algorithm
        self.algorithm_name = (
            algorithm if isinstance(algorithm, str) else algorithm_cls.__name__
        )
        self.config = config if config is not None else ClusterConfig()
        # An externally supplied kernel lets several clusters share one
        # simulated timeline (used by reconfiguration: the old and new
        # configurations coexist during the handoff).
        self.kernel = (
            kernel
            if kernel is not None
            else Kernel(seed=self.config.seed, tie_break=tie_break)
        )
        self.metrics = MetricsCollector()
        self.network = Network(self.kernel, self.config, self.metrics)
        self.processes: list[SnapshotAlgorithm] = [
            algorithm_cls(node_id, self.kernel, self.network, self.config)
            for node_id in range(self.config.n)
        ]
        self.tracker = CycleTracker(self.kernel, self.processes)
        self.history = HistoryRecorder()
        #: Observability hook (:class:`repro.obs.observe.ClusterObs` or
        #: ``None``), set by :meth:`Observability.attach
        #: <repro.obs.observe.Observability.attach>`.  When an ambient
        #: session is installed (``with repro.obs.session(): …``), every
        #: cluster attaches itself on construction — that is how the CLI's
        #: ``--trace-out`` observes clusters built inside experiment
        #: runners.
        self.obs = None
        ambient = current_session()
        if ambient is not None:
            ambient.attach(self)
        self._started = False
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start every node's do-forever loop."""
        if self._started:
            return
        for process in self.processes:
            process.start()
        self._started = True

    def stop(self) -> None:
        """Stop every node's do-forever loop."""
        for process in self.processes:
            process.stop()
        self._started = False

    def node(self, node_id: int) -> SnapshotAlgorithm:
        """The algorithm instance running at ``node_id``."""
        return self.processes[node_id]

    # -- operations (coroutines) ------------------------------------------------

    async def write(self, node_id: int, value: Any) -> int:
        """Invoke ``write(value)`` at a node, recording it in the history."""
        op_id = self.history.invoke(node_id, WRITE, value, now=self.kernel.now)
        obs = self.obs
        span = obs.begin_op(node_id, WRITE, op_id) if obs is not None else None
        try:
            ts = await self.processes[node_id].write(value)
        except BaseException:
            self.history.abort(op_id, now=self.kernel.now)
            if span is not None:
                obs.end_op(span, status="aborted")
            raise
        self.history.respond(op_id, result=ts, now=self.kernel.now)
        if span is not None:
            obs.end_op(span)
        return ts

    async def snapshot(self, node_id: int) -> SnapshotResult:
        """Invoke ``snapshot()`` at a node, recording it in the history."""
        op_id = self.history.invoke(node_id, SNAPSHOT, now=self.kernel.now)
        obs = self.obs
        span = (
            obs.begin_op(node_id, SNAPSHOT, op_id) if obs is not None else None
        )
        try:
            result = await self.processes[node_id].snapshot()
        except BaseException:
            self.history.abort(op_id, now=self.kernel.now)
            if span is not None:
                obs.end_op(span, status="aborted")
            raise
        self.history.respond(op_id, result=result, now=self.kernel.now)
        if span is not None:
            obs.end_op(span)
        return result

    # -- synchronous convenience ---------------------------------------------------

    def write_sync(
        self, node_id: int, value: Any, max_events: int | None = 2_000_000
    ) -> int:
        """Run the kernel until a single write completes."""
        return self.kernel.run_until_complete(
            self.write(node_id, value), max_events=max_events
        )

    def snapshot_sync(
        self, node_id: int, max_events: int | None = 2_000_000
    ) -> SnapshotResult:
        """Run the kernel until a single snapshot completes."""
        return self.kernel.run_until_complete(
            self.snapshot(node_id), max_events=max_events
        )

    def run_until(
        self, awaitable: Awaitable[Any], max_events: int | None = 5_000_000
    ) -> Any:
        """Drive the kernel until an arbitrary awaitable completes."""
        return self.kernel.run_until_complete(awaitable, max_events=max_events)

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration`` (background traffic runs)."""
        self.kernel.run(until_time=self.kernel.now + duration)

    def spawn(self, coro, name: str = "") -> SimTask:
        """Start a background task on the cluster's kernel."""
        return self.kernel.create_task(coro, name=name)

    async def settle_cycles(self, cycles: int) -> None:
        """Let the cluster run for a number of asynchronous cycles."""
        await self.tracker.wait_cycles(cycles)

    # -- fault controls ---------------------------------------------------------------

    def crash(self, node_id: int) -> None:
        """Crash a node (stops taking steps; messages to it are lost)."""
        self.processes[node_id].crash()

    def resume(self, node_id: int, restart: bool = False) -> None:
        """Resume a crashed node (optionally with a detectable restart)."""
        self.processes[node_id].resume(restart=restart)

    def alive_nodes(self) -> list[int]:
        """Ids of currently non-crashed nodes."""
        return [p.node_id for p in self.processes if not p.crashed]

    # -- observability ------------------------------------------------------------------

    def quiescent_registers(self) -> list[tuple[int, ...]]:
        """Every node's register vector clock (diagnostics)."""
        return [p.reg.vector_clock() for p in self.processes]

    def for_each_process(self, action: Callable[[SnapshotAlgorithm], None]) -> None:
        """Apply an action to every process (fault injection hooks)."""
        for process in self.processes:
            action(process)

    def __repr__(self) -> str:
        return (
            f"<SnapshotCluster {self.algorithm_name} n={self.config.n} "
            f"t={self.kernel.now:.1f}>"
        )
