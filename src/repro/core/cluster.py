"""The public facade: a simulated cluster emulating one snapshot object.

:class:`SnapshotCluster` wires together the kernel, the network fabric,
one algorithm instance per node, the metrics collector, the asynchronous
cycle tracker, and the operation-history recorder — everything an
experiment needs.  Most callers use the synchronous helpers::

    cluster = SnapshotCluster("ss-nonblocking", ClusterConfig(n=5))
    cluster.write_sync(0, b"hello")
    result = cluster.snapshot_sync(1)

Coroutine variants (:meth:`~repro.backend.base.ClusterBackend.write`,
:meth:`~repro.backend.base.ClusterBackend.snapshot`) compose with the
kernel directly for concurrent workloads.

This module also owns the algorithm registry (:data:`ALGORITHMS`,
:func:`register_algorithm`) that every backend resolves names through.
"""

from __future__ import annotations

from repro.backend.sim import SimBackend
from repro.core.dgfr_always import DgfrAlwaysTerminating
from repro.core.dgfr_nonblocking import DgfrNonBlocking
from repro.core.ss_always import SelfStabilizingAlwaysTerminating
from repro.core.ss_nonblocking import SelfStabilizingNonBlocking
from repro.errors import ConfigurationError

__all__ = ["SnapshotCluster", "ALGORITHMS", "register_algorithm"]

#: Registry of algorithm names accepted by :class:`SnapshotCluster` and
#: every :class:`~repro.backend.base.ClusterBackend`.  Extended lazily by
#: optional subsystems (stacked baseline, bounded variants) via
#: :func:`register_algorithm`.
ALGORITHMS: dict[str, type] = {
    "dgfr-nonblocking": DgfrNonBlocking,
    "ss-nonblocking": SelfStabilizingNonBlocking,
    "dgfr-always": DgfrAlwaysTerminating,
    "ss-always": SelfStabilizingAlwaysTerminating,
}


def register_algorithm(name: str, algorithm_cls: type) -> None:
    """Add an algorithm to the registry (idempotent for the same class)."""
    existing = ALGORITHMS.get(name)
    if existing is not None and existing is not algorithm_cls:
        raise ConfigurationError(
            f"algorithm name {name!r} already registered to {existing!r}"
        )
    ALGORITHMS[name] = algorithm_cls


class SnapshotCluster(SimBackend):
    """A complete simulated deployment of one snapshot-object algorithm.

    .. deprecated::
        ``SnapshotCluster`` is now a thin alias of
        :class:`repro.backend.sim.SimBackend` — the ``sim`` implementation
        of the cross-runtime :class:`~repro.backend.base.ClusterBackend`
        contract.  Existing code keeps working unchanged; new
        backend-agnostic code should go through
        :func:`repro.backend.create_backend` /
        :func:`repro.backend.run_on_backend`.
    """
