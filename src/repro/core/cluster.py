"""The algorithm registry every backend resolves names through.

:data:`ALGORITHMS` maps registry names to algorithm classes;
:func:`register_algorithm` lets optional subsystems (stacked baseline,
bounded variants) extend it lazily.

The ``SnapshotCluster`` facade that used to live here completed its
deprecation cycle (alias since PR 4, removed in PR 8).  Deployments are
built through :func:`repro.backend.create_backend` (or
:class:`repro.backend.sim.SimBackend` directly for simulator-only
code), and the documented keyed entry point is
:class:`repro.client.SnapshotClient`.
"""

from __future__ import annotations

from repro.core.amortized import AmortizedSnapshot
from repro.core.dgfr_always import DgfrAlwaysTerminating
from repro.core.dgfr_nonblocking import DgfrNonBlocking
from repro.core.ss_always import SelfStabilizingAlwaysTerminating
from repro.core.ss_nonblocking import SelfStabilizingNonBlocking
from repro.errors import ConfigurationError

__all__ = ["ALGORITHMS", "register_algorithm"]

#: Registry of algorithm names accepted by every
#: :class:`~repro.backend.base.ClusterBackend`.  Extended lazily by
#: optional subsystems (stacked baseline, bounded variants) via
#: :func:`register_algorithm`.
ALGORITHMS: dict[str, type] = {
    "dgfr-nonblocking": DgfrNonBlocking,
    "ss-nonblocking": SelfStabilizingNonBlocking,
    "dgfr-always": DgfrAlwaysTerminating,
    "ss-always": SelfStabilizingAlwaysTerminating,
    "amortized": AmortizedSnapshot,
}


def register_algorithm(name: str, algorithm_cls: type) -> None:
    """Add an algorithm to the registry (idempotent for the same class)."""
    existing = ALGORITHMS.get(name)
    if existing is not None and existing is not algorithm_cls:
        raise ConfigurationError(
            f"algorithm name {name!r} already registered to {existing!r}"
        )
    ALGORITHMS[name] = algorithm_cls


def __getattr__(name: str):
    if name == "SnapshotCluster":
        raise ImportError(
            "SnapshotCluster was removed after its deprecation cycle "
            "(PR 4 → PR 8). Use repro.backend.sim.SimBackend for "
            "simulator deployments, repro.backend.create_backend for "
            "backend-agnostic code, or repro.client.SnapshotClient for "
            "the keyed facade."
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
