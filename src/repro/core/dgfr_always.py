"""Delporte-Gallet et al.'s always-terminating algorithm (Algorithm 2).

The non-self-stabilizing baseline that guarantees termination of *both*
write and snapshot operations regardless of invocation patterns.  The
mechanism is a job-stealing scheme: a node starting a snapshot reliably
broadcasts a ``SNAP(i, sns)`` task to every node; every node serves the
oldest announced task through ``baseSnapshot`` before serving anything
newer, deferring its own writes meanwhile.  Because *all* nodes run the
query rounds for the same task, some node eventually observes an
interference-free round and reliably broadcasts the result in an ``END``
message, which every node stores in the unbounded ``repSnap`` table.

Costs (reproduced by benchmark E4): O(n²) messages per snapshot task —
every node runs majority query rounds — plus the reliable-broadcast
traffic for ``SNAP`` and ``END``.  The unbounded ``repSnap`` table and the
reliance on reliable broadcast are exactly what the paper's Algorithm 3
replaces (bounded space is a prerequisite for self-stabilization).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.broadcast.reliable import ReliableBroadcast
from repro.config import ClusterConfig
from repro.core.base import SnapshotAlgorithm, SnapshotResult
from repro.core.register import RegisterArray
from repro.net.message import Message
from repro.net.quorum import AckCollector, broadcast_until
from repro.sim.kernel import Kernel

__all__ = [
    "DgfrAlwaysTerminating",
    "SnapMessage",
    "EndMessage",
    "TaskSnapshotMessage",
    "TaskSnapshotAckMessage",
]


@dataclass(frozen=True)
class SnapMessage(Message):
    """``SNAP(source, sn)``: announcement of a new snapshot task (line 46)."""

    KIND = "SNAP"
    source: int
    sn: int


@dataclass(frozen=True)
class EndMessage(Message):
    """``END(s, t, val)``: the result of task ``(s, t)`` (line 59)."""

    KIND = "END"
    source: int
    sn: int
    result: RegisterArray


@dataclass(frozen=True)
class TaskSnapshotMessage(Message):
    """``SNAPSHOT(s, t, reg, ssn)``: a query round for task ``(s, t)``."""

    KIND = "SNAPSHOT"
    source: int
    sn: int
    reg: RegisterArray
    ssn: int


@dataclass(frozen=True)
class TaskSnapshotAckMessage(Message):
    """``SNAPSHOTack(s, t, reg, ssn)`` (line 65)."""

    KIND = "SNAPSHOTack"
    source: int
    sn: int
    reg: RegisterArray
    ssn: int


class DgfrAlwaysTerminating(SnapshotAlgorithm):
    """The non-self-stabilizing always-terminating snapshot object."""

    SELF_STABILIZING = False

    def __init__(
        self,
        node_id: int,
        kernel: Kernel,
        network: Any,
        config: ClusterConfig,
    ) -> None:
        super().__init__(node_id, kernel, network, config)
        self.register_handler(TaskSnapshotMessage.KIND, self._on_task_snapshot)
        self._rb = ReliableBroadcast(self, self._on_rb_deliver)

    def initialize_state(self) -> None:
        """Lines 32–35: indices, the write slot, and the repSnap table."""
        super().initialize_state()
        self.ssn: int = 0
        self.sns: int = 0
        self.write_pending: Any = None
        #: ``repSnap``: results of completed tasks, keyed by (source, sn).
        #: Unbounded — faithful to the baseline the paper improves on.
        self.rep_snap: dict[tuple[int, int], RegisterArray] = {}
        #: SNAP tasks received and not yet processed, in arrival order.
        self._task_queue: deque[tuple[int, int]] = deque()
        self._queued: set[tuple[int, int]] = set()
        self._changed = self.kernel.create_event()

    # -- reliable-broadcast deliveries ---------------------------------------------

    def _on_rb_deliver(self, origin: int, payload: Message) -> None:
        if isinstance(payload, SnapMessage):
            task = (payload.source, payload.sn)
            if task not in self._queued and task not in self.rep_snap:
                self._queued.add(task)
                self._task_queue.append(task)
        elif isinstance(payload, EndMessage):
            # Line 66: repSnap[s, t] ← val.
            self.rep_snap[(payload.source, payload.sn)] = payload.result
        self._notify()

    def _notify(self) -> None:
        self._changed.set()

    async def _wait_until(self, condition) -> None:
        """Block until ``condition()`` holds (woken by state changes)."""
        while not condition():
            self._changed.clear()
            await self._changed.wait()

    # -- the do-forever loop (lines 37–42) --------------------------------------------

    async def do_forever_iteration(self) -> None:
        """Serve the pending write, then the oldest snapshot task.

        Lines 38–42: the write slot is served first; then the oldest
        unprocessed ``SNAP`` task is run to completion — the node blocks
        here (deferring subsequent writes) until the task's result appears
        in ``repSnap``, which is the synchronization that makes snapshot
        operations always terminate.
        """
        if self.write_pending is not None:
            value = self.write_pending
            await self.base_write(value)
            self.write_pending = None
            self._notify()
        if self._task_queue:
            source, sn = self._task_queue.popleft()
            await self.base_snapshot(source, sn)
            await self._wait_until(lambda: (source, sn) in self.rep_snap)

    # -- operations (lines 43–47) ----------------------------------------------------------

    async def write(self, value: Any) -> int:
        """Line 44: deposit the value and wait for the loop to serve it."""
        self._begin_operation("write")
        try:
            self.write_pending = value
            self._notify()
            await self._wait_until(lambda: self.write_pending is None)
            return self.reg[self.node_id].ts
        finally:
            self._end_operation("write")

    async def snapshot(self) -> SnapshotResult:
        """Lines 45–47: announce the task, wait for its result."""
        self._begin_operation("snapshot")
        try:
            self.sns += 1
            task = (self.node_id, self.sns)
            self._rb.broadcast(SnapMessage(source=task[0], sn=task[1]))
            await self._wait_until(lambda: task in self.rep_snap)
            return SnapshotResult.from_registers(self.rep_snap[task])
        finally:
            self._end_operation("snapshot")

    # -- baseSnapshot (lines 52–59) -----------------------------------------------------------

    async def base_snapshot(self, source: int, sn: int) -> None:
        """Run query rounds for task ``(source, sn)`` until a result exists."""
        while (source, sn) not in self.rep_snap:
            prev = self.reg.copy()
            self.ssn += 1

            def matches(sender: int, msg: Message) -> bool:
                return (
                    msg.source == source
                    and msg.sn == sn
                    and msg.ssn == self.ssn
                )

            with AckCollector(
                self, TaskSnapshotAckMessage.KIND, self.majority, match=matches
            ) as collector:
                await broadcast_until(
                    self,
                    lambda: TaskSnapshotMessage(
                        source=source, sn=sn, reg=self.reg.copy(), ssn=self.ssn
                    ),
                    collector,
                )
                replies = collector.reply_messages()
            self.merge(msg.reg for msg in replies)
            if prev == self.reg:
                # Line 59: publish the interference-free view as the result.
                self._rb.broadcast(
                    EndMessage(source=source, sn=sn, result=prev.copy())
                )
                await self._wait_until(lambda: (source, sn) in self.rep_snap)

    # -- server side (lines 63–65) -------------------------------------------------------------

    def _on_task_snapshot(self, sender: int, message: TaskSnapshotMessage) -> None:
        self.reg.merge_from(message.reg)
        self.send(
            sender,
            TaskSnapshotAckMessage(
                source=message.source,
                sn=message.sn,
                reg=self.reg.copy(),
                ssn=message.ssn,
            ),
        )
