"""Amortized constant-round snapshot variant (batched shared rounds).

Follows the idea of Garg, Kumar, Tseng and Zheng, *Amortized Constant
Round Atomic Snapshot in Message-Passing Systems*: when several local
operations are pending at once, they share protocol rounds instead of
each paying their own, so a pipeline of k concurrent operations
completes in amortized O(1) rounds rather than O(k).

Concretely, on top of the self-stabilizing non-blocking object:

* **Write batching (group commit).**  All locally pending writes are
  drained together: each gets its own timestamp (``ts += 1`` per write,
  so per-writer timestamps stay strictly monotone), the *last* value is
  installed in ``reg``, and one shared WRITE quorum round acknowledges
  the whole batch.  The intermediate values of a batch are never
  observable by any snapshot — they linearize immediately before the
  batch's final write, which is exactly the "never-observed write"
  case the linearizability checker admits.
* **Scan sharing.**  All locally pending snapshots share query rounds.
  Each round is literally the DGFR loop body — capture ``prev``, bump
  ``ssn``, run one majority query, return ``reg`` iff ``prev = reg`` —
  but one round's interference-free success resolves *every* scan that
  was pending when the round began.  Scans enqueued mid-round wait for
  the next round, which preserves real-time order.  The termination
  class is unchanged: non-blocking (a scan can be starved by an endless
  stream of remote writes), demonstrated by the same E12-style probe.

Because operations must genuinely overlap for batching to pay off, this
variant sets :attr:`AmortizedSnapshot.CONCURRENT_CLIENTS`, which tells
the cluster backends *not* to FIFO-chain submissions per node.  The
sequential-client discipline of the other variants (``_begin_operation``
raising on overlap) is intentionally replaced by unique in-flight
tokens: overlapping local operations are the whole point here, and the
engine serializes them into shared rounds internally.

The variant reuses the WRITE/SNAPSHOT/GOSSIP message kinds and server
handlers of its parents unchanged — the wire protocol is identical;
only the client-side round scheduling differs.
"""

from __future__ import annotations

from typing import Any

from repro.core.base import SnapshotResult, WriteAckMessage, WriteMessage
from repro.core.register import TimestampedValue
from repro.core.ss_nonblocking import SelfStabilizingNonBlocking
from repro.net.message import Message
from repro.net.quorum import AckCollector, broadcast_until

__all__ = ["AmortizedSnapshot"]


class _PendingOp:
    """One enqueued local operation awaiting a shared round."""

    __slots__ = ("value", "event", "result")

    def __init__(self, kernel, value: Any = None) -> None:
        self.value = value
        self.event = kernel.create_event()
        self.result: Any = None

    def resolve(self, result: Any) -> None:
        self.result = result
        self.event.set()


class AmortizedSnapshot(SelfStabilizingNonBlocking):
    """Self-stabilizing snapshot object with amortized-O(1)-round batching."""

    SELF_STABILIZING = True
    #: Cluster backends must not serialize submissions per node — pending
    #: local operations are what the engine batches into shared rounds.
    CONCURRENT_CLIENTS = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Pending queues and the engine handle live here, NOT in
        # initialize_state(): a detectable restart re-runs the latter,
        # and must reset the protocol state (ts, reg, ssn) without
        # orphaning clients already waiting on enqueued operations.
        self._pending_writes: list[_PendingOp] = []
        self._pending_scans: list[_PendingOp] = []
        self._engine_task = None
        self._op_counter = 0

    # -- client side ------------------------------------------------------------

    async def write(self, value: Any) -> int:
        """Enqueue a write; resolves with its timestamp after a shared round."""
        token = self._claim_token("write")
        try:
            op = _PendingOp(self.kernel, value)
            self._pending_writes.append(op)
            self._ensure_engine()
            await op.event.wait()
            return op.result
        finally:
            self._ops_in_flight.discard(token)

    async def snapshot(self) -> SnapshotResult:
        """Enqueue a scan; resolves after a shared interference-free round."""
        token = self._claim_token("snapshot")
        try:
            op = _PendingOp(self.kernel)
            self._pending_scans.append(op)
            self._ensure_engine()
            await op.event.wait()
            return op.result
        finally:
            self._ops_in_flight.discard(token)

    def _claim_token(self, name: str) -> str:
        """Unique in-flight token (overlap is legal here, unlike the base)."""
        self._op_counter += 1
        token = f"{name}#{self._op_counter}"
        self._ops_in_flight.add(token)
        return token

    # -- the round engine ----------------------------------------------------------

    def _ensure_engine(self) -> None:
        if self._engine_task is None or self._engine_task.done():
            self._engine_task = self.kernel.create_task(
                self._engine(), name=f"node{self.node_id}.batch_engine"
            )

    async def _engine(self) -> None:
        """Run shared rounds until no local operation is pending.

        Alternates one write round and one scan round per lap so neither
        kind starves the other locally (a scan can still be starved by
        *remote* writers — the inherited non-blocking guarantee).
        """
        try:
            while self._pending_writes or self._pending_scans:
                if self._pending_writes:
                    await self._write_round()
                if self._pending_scans:
                    await self._scan_round()
        finally:
            self._engine_task = None

    async def _write_round(self) -> None:
        """Group commit: drain pending writes, one shared quorum round.

        Timestamps are assigned per write so each caller gets a distinct,
        per-writer-monotone index; only the last value is installed, so
        the earlier writes of the batch are never observed (they
        linearize immediately before the final one).
        """
        batch, self._pending_writes = self._pending_writes, []
        for op in batch:
            self.ts += 1
            self.reg[self.node_id] = TimestampedValue(self.ts, op.value)
            op.result = self.ts
        if self.obs is not None:
            self.obs.phase("write.batch_round")
        l_reg = self.reg.copy()

        def matches(sender: int, msg: Message) -> bool:
            return l_reg.precedes_or_equals(msg.reg)

        with AckCollector(
            self, WriteAckMessage.KIND, self.majority, match=matches
        ) as collector:
            await broadcast_until(
                self, lambda: WriteMessage(reg=self.reg.copy()), collector
            )
            replies = collector.reply_messages()
        self.merge(msg.reg for msg in replies)
        for op in batch:
            op.event.set()

    async def _scan_round(self) -> None:
        """One shared DGFR query round for every scan pending at its start.

        On interference (``prev != reg`` after the round) the batch is
        re-enqueued at the *front* so it merges with newly arrived scans
        in the next round; the engine loop interleaves write rounds in
        between, so pending local writes still make progress.
        """
        batch, self._pending_scans = self._pending_scans, []
        prev = self.reg.copy()
        self.ssn += 1
        if self.obs is not None:
            self.obs.phase("snapshot.batch_round")
        await self._query_round()
        if prev == self.reg:
            result = SnapshotResult.from_registers(self.reg)
            for op in batch:
                op.resolve(result)
        else:
            self._pending_scans = batch + self._pending_scans

    # -- lifecycle ------------------------------------------------------------------

    def stop(self) -> None:
        """Also cancel the round engine (end of an experiment)."""
        super().stop()
        if self._engine_task is not None:
            self._engine_task.cancel()
            self._engine_task = None
