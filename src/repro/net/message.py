"""Message base class and wire-size accounting.

Algorithms define one frozen dataclass per message type (WRITE, WRITEack,
SNAPSHOT, GOSSIP, …), each carrying a class-level ``KIND`` tag used for
metrics and handler dispatch.  :func:`measure_size` estimates the
serialized size of a message in bytes so that the paper's bit-complexity
claims (O(n·ν) operation messages vs O(ν) gossip) can be measured rather
than asserted.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.core.register import RegisterArray, TimestampedValue

__all__ = [
    "Message",
    "measure_size",
    "invalidate_wire_cache",
    "HEADER_BYTES",
    "INT_BYTES",
]

#: Fixed per-message framing overhead we charge (kind tag + addressing).
HEADER_BYTES = 16
#: Bytes charged per integer field (64-bit operation indices, per Section 5).
INT_BYTES = 8


@dataclass(frozen=True)
class Message:
    """Base class for all wire messages.

    Subclasses set ``KIND`` to a short unique tag; the network uses it for
    metrics, and processes use it for handler dispatch.
    """

    KIND: ClassVar[str] = "?"

    @property
    def kind(self) -> str:
        """The message's wire tag (dispatch and metrics key)."""
        return self.KIND

    def wire_size(self) -> int:
        """Estimated serialized size in bytes, including framing.

        The size is measured once per instance and cached: a broadcast
        hands the *same* message object to all ``n-1`` destination
        channels, so without the cache every fan-out re-walks the payload
        recursively per destination.  Messages are frozen dataclasses, so
        the cache is sound as long as mutation goes through
        ``dataclasses.replace`` (a fresh instance, as the fault injectors
        do) — anything that mutates a packet in place must call
        :func:`invalidate_wire_cache` on it.
        """
        cache = self.__dict__
        size = cache.get("_wire_size")
        if size is None:
            size = HEADER_BYTES + measure_size(self)
            object.__setattr__(self, "_wire_size", size)
        return size


def invalidate_wire_cache(message: Message) -> None:
    """Drop any cached size/encoding from ``message``.

    Fault injectors that hand back a mutated packet (rather than a fresh
    ``dataclasses.replace`` copy) must call this so the cached wire size
    (:meth:`Message.wire_size`) and cached codec bytes
    (:func:`repro.net.codec.encode_message`) are re-derived from the
    corrupted contents.
    """
    cache = getattr(message, "__dict__", None)
    if cache is not None:
        cache.pop("_wire_size", None)
        cache.pop("_wire_bytes", None)


def measure_size(obj: Any) -> int:
    """Recursively estimate the encoded size of ``obj`` in bytes.

    The estimate charges 8 bytes per integer, actual length for
    ``bytes``/``str`` values, and recurses through containers,
    dataclasses, and register types.  It is deliberately a *codec model*,
    not ``sys.getsizeof``: the paper's ν is the number of bits needed to
    represent the object value, so benchmarks encode values as ``bytes``
    of length ν/8 and this function reports faithful totals.
    """
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return INT_BYTES
    if isinstance(obj, float):
        return 8
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, TimestampedValue):
        return INT_BYTES + measure_size(obj.value)
    if isinstance(obj, RegisterArray):
        return sum(measure_size(entry) for entry in obj)
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(measure_size(item) for item in obj)
    if isinstance(obj, dict):
        return sum(
            measure_size(key) + measure_size(value) for key, value in obj.items()
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return sum(
            measure_size(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        )
    # Opaque application values: charge a conservative flat size.
    return 8
