"""Networked-system substrate: messages, channels, fabric, processes, quorum.

Implements the paper's system model (Section 2): ``n`` asynchronous
processes connected by a full mesh of bounded-capacity channels that may
lose, duplicate, and reorder packets, with a retransmitting quorum service
layered on top.
"""

from repro.net.channel import Channel
from repro.net.message import Message, measure_size
from repro.net.network import Network
from repro.net.node import Process
from repro.net.quorum import AckCollector, broadcast_until

__all__ = [
    "AckCollector",
    "Channel",
    "Message",
    "Network",
    "Process",
    "broadcast_until",
    "measure_size",
]
