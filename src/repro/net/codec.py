"""Binary wire codec for protocol messages.

A small, self-describing, recursive tag-length-value format for the
message dataclasses, replacing pickle on the UDP transport: no arbitrary
code execution on decode, stable sizes close to
:func:`repro.net.message.measure_size`'s model, and graceful rejection
of malformed datagrams (:class:`CodecError`), which the fault model
treats as message loss.

Supported values: ``None``, ``bool``, ``int`` (signed, arbitrary
precision), ``float``, ``bytes``, ``str``, ``tuple``/``list``,
``frozenset``, :class:`~repro.core.register.TimestampedValue`,
:class:`~repro.core.register.RegisterArray`,
:class:`~repro.core.ss_always.TaskDescriptor`, and any registered
:class:`~repro.net.message.Message` subclass (messages nest, e.g. the
epoch envelope).  Message classes are auto-registered from the known
algorithm modules; custom messages register via :func:`register_message`.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any

from repro.core.register import RegisterArray, TimestampedValue
from repro.errors import ReproError
from repro.net.message import Message

__all__ = ["encode_message", "decode_message", "register_message", "CodecError"]


class CodecError(ReproError):
    """A datagram could not be decoded (treated as message loss)."""


# -- type tags ----------------------------------------------------------------

_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"
_T_FLOAT = b"f"
_T_BYTES = b"b"
_T_STR = b"s"
_T_TUPLE = b"t"
_T_FROZENSET = b"z"
_T_TSVALUE = b"V"
_T_REGARRAY = b"R"
_T_TASKDESC = b"D"
_T_MESSAGE = b"M"

#: Message type registry: class name → class (populated lazily).
_MESSAGE_TYPES: dict[str, type[Message]] = {}


def register_message(message_cls: type[Message]) -> type[Message]:
    """Register a message class for decoding (idempotent)."""
    _MESSAGE_TYPES[message_cls.__name__] = message_cls
    return message_cls


def _ensure_registry() -> None:
    if _MESSAGE_TYPES:
        return
    from repro.broadcast import reliable
    from repro.consensus import messages as consensus_messages
    from repro.core import amortized, base, dgfr_always, dgfr_nonblocking
    from repro.core import ss_always, ss_nonblocking
    from repro.net import batch
    from repro.stabilization import reset
    from repro.stacked import abd

    for module in (
        base,
        dgfr_nonblocking,
        ss_nonblocking,
        dgfr_always,
        ss_always,
        amortized,
        reliable,
        reset,
        abd,
        consensus_messages,
        batch,
    ):
        for name in dir(module):
            obj = getattr(module, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Message)
                and obj is not Message
            ):
                register_message(obj)


# -- encoding --------------------------------------------------------------------


def _pack_length(buffer: bytearray, length: int) -> None:
    buffer += struct.pack(">I", length)


def _encode_value(buffer: bytearray, value: Any) -> None:
    from repro.core.ss_always import TaskDescriptor

    if value is None:
        buffer += _T_NONE
    elif value is True:
        buffer += _T_TRUE
    elif value is False:
        buffer += _T_FALSE
    elif isinstance(value, int):
        payload = str(value).encode("ascii")
        buffer += _T_INT
        _pack_length(buffer, len(payload))
        buffer += payload
    elif isinstance(value, float):
        buffer += _T_FLOAT
        buffer += struct.pack(">d", value)
    elif isinstance(value, bytes):
        buffer += _T_BYTES
        _pack_length(buffer, len(value))
        buffer += value
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        buffer += _T_STR
        _pack_length(buffer, len(encoded))
        buffer += encoded
    elif isinstance(value, (tuple, list)):
        buffer += _T_TUPLE
        _pack_length(buffer, len(value))
        for item in value:
            _encode_value(buffer, item)
    elif isinstance(value, frozenset):
        buffer += _T_FROZENSET
        _pack_length(buffer, len(value))
        # Deterministic order so equal sets encode identically.
        for item in sorted(value, key=repr):
            _encode_value(buffer, item)
    elif isinstance(value, TimestampedValue):
        buffer += _T_TSVALUE
        _encode_value(buffer, value.ts)
        _encode_value(buffer, value.value)
    elif isinstance(value, RegisterArray):
        buffer += _T_REGARRAY
        _pack_length(buffer, len(value))
        for entry in value:
            _encode_value(buffer, entry.ts)
            _encode_value(buffer, entry.value)
    elif isinstance(value, TaskDescriptor):
        buffer += _T_TASKDESC
        _encode_value(buffer, value.node)
        _encode_value(buffer, value.sns)
        _encode_value(buffer, value.vc)
    elif isinstance(value, Message):
        name = type(value).__name__.encode("ascii")
        buffer += _T_MESSAGE
        _pack_length(buffer, len(name))
        buffer += name
        fields = dataclasses.fields(value)
        _pack_length(buffer, len(fields))
        for field in fields:
            _encode_value(buffer, getattr(value, field.name))
    else:
        raise CodecError(f"cannot encode value of type {type(value).__name__}")


def encode_message(message: Message) -> bytes:
    """Encode a message (and everything it nests) to bytes.

    The encoding is cached on the message instance: a broadcast encodes
    its payload once and reuses the bytes for every destination (the UDP
    transport otherwise re-encodes per datagram).  The cache follows the
    same contract as :meth:`repro.net.message.Message.wire_size` — frozen
    dataclasses plus ``dataclasses.replace``-style mutation keep it sound;
    in-place mutators must call
    :func:`repro.net.message.invalidate_wire_cache`.
    """
    cached = message.__dict__.get("_wire_bytes")
    if cached is not None:
        return cached
    buffer = bytearray()
    _encode_value(buffer, message)
    encoded = bytes(buffer)
    object.__setattr__(message, "_wire_bytes", encoded)
    return encoded


# -- decoding ---------------------------------------------------------------------


class _Reader:
    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise CodecError("truncated datagram")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def take_length(self) -> int:
        return struct.unpack(">I", self.take(4))[0]


def _decode_value(reader: _Reader) -> Any:
    from repro.core.ss_always import TaskDescriptor

    tag = reader.take(1)
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        payload = reader.take(reader.take_length())
        try:
            return int(payload.decode("ascii"))
        except ValueError as exc:
            raise CodecError(f"bad integer payload {payload!r}") from exc
    if tag == _T_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _T_BYTES:
        return reader.take(reader.take_length())
    if tag == _T_STR:
        return reader.take(reader.take_length()).decode("utf-8")
    if tag == _T_TUPLE:
        count = reader.take_length()
        return tuple(_decode_value(reader) for _ in range(count))
    if tag == _T_FROZENSET:
        count = reader.take_length()
        return frozenset(_decode_value(reader) for _ in range(count))
    if tag == _T_TSVALUE:
        ts = _decode_value(reader)
        value = _decode_value(reader)
        return TimestampedValue(ts=ts, value=value)
    if tag == _T_REGARRAY:
        count = reader.take_length()
        entries = []
        for _ in range(count):
            ts = _decode_value(reader)
            value = _decode_value(reader)
            entries.append(TimestampedValue(ts=ts, value=value))
        return RegisterArray(entries)
    if tag == _T_TASKDESC:
        node = _decode_value(reader)
        sns = _decode_value(reader)
        vc = _decode_value(reader)
        return TaskDescriptor(node=node, sns=sns, vc=vc)
    if tag == _T_MESSAGE:
        _ensure_registry()
        name = reader.take(reader.take_length()).decode("ascii")
        message_cls = _MESSAGE_TYPES.get(name)
        if message_cls is None:
            raise CodecError(f"unknown message type {name!r}")
        field_count = reader.take_length()
        fields = dataclasses.fields(message_cls)
        if field_count != len(fields):
            raise CodecError(
                f"{name}: expected {len(fields)} fields, got {field_count}"
            )
        kwargs = {
            field.name: _decode_value(reader) for field in fields
        }
        try:
            return message_cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot rebuild {name}: {exc}") from exc
    raise CodecError(f"unknown tag {tag!r}")


def decode_message(data: bytes) -> Message:
    """Decode bytes produced by :func:`encode_message`.

    Raises :class:`CodecError` on any malformed input (the UDP transport
    treats that as a lost datagram).
    """
    reader = _Reader(data)
    value = _decode_value(reader)
    if not isinstance(value, Message):
        raise CodecError(f"top-level value is not a message: {value!r}")
    if reader.offset != len(data):
        raise CodecError("trailing bytes after message")
    return value
