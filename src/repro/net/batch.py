"""Transport-level op batching: coalesce concurrent sends per node pair.

The paper's quorum rounds pay one wire packet per message; under a
pipeline of concurrent operations many of those packets travel the same
ordered ``(src, dst)`` edge at the same instant (a broadcast from a node
running k concurrent ops emits k messages to each peer back-to-back).
:class:`BatchWindow` coalesces them: messages pushed within one
scheduling instant accumulate in a per-edge buffer and flush as a single
:class:`BatchMessage` bundle — one channel submission, hence one
loss/delay/duplication draw and one capacity slot for the whole bundle —
which the receiving fabric unbundles back into the original messages in
FIFO order before delivery.

Batching is a *transport* optimization: algorithms never see a
``BatchMessage`` (unbundling happens below ``Process.deliver``), message
metrics still count the inner messages (the paper's complexity claims
are per logical message), and a bundle of one is forwarded bare, so a
``batch_window`` of 1 — the default — leaves the wire byte-identical to
the unbatched transport.  FIFO per edge is preserved (buffers flush in
push order; bundles deliver their contents in order), so the SWMR
one-client-per-node model and the determinism goldens are untouched.

The flush scheduling uses ``kernel.call_soon``, which under the default
``RANDOM`` tie-break draws a priority from the kernel RNG — that is why
the fabric only constructs a :class:`BatchWindow` when
``ChannelConfig.batch_window > 1``: the unbatched path must not consume
extra RNG draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.metrics import MetricsCollector
from repro.net.message import Message

__all__ = ["BatchMessage", "BatchWindow"]


@dataclass(frozen=True)
class BatchMessage(Message):
    """A bundle of messages travelling one edge as a single wire packet.

    Created only by :class:`BatchWindow`; the delivering fabric unbundles
    it before any process sees it, so no algorithm registers a handler
    for ``"BATCH"``.
    """

    KIND = "BATCH"

    messages: tuple[Message, ...]


class BatchWindow:
    """Bounded per-edge send coalescing for one network fabric.

    ``push`` buffers a message for its ``(src, dst)`` edge.  A buffer
    flushes when it reaches ``window`` messages, or at the end of the
    current scheduling instant (the first buffered message schedules a
    ``call_soon`` flush), whichever comes first — batching therefore
    never *delays* a message past the instant it was sent, it only
    merges messages that were already simultaneous.

    ``forward(src, dst, message)`` receives the flush output: the bare
    message for a buffer of one, a :class:`BatchMessage` for two or
    more.  Occupancy lands in the metrics collector
    (:meth:`~repro.analysis.metrics.MetricsCollector.record_batch`).
    """

    __slots__ = ("_kernel", "_window", "_forward", "_metrics", "_buffers")

    def __init__(
        self,
        kernel,
        window: int,
        forward: Callable[[int, int, Message], None],
        metrics: MetricsCollector | None = None,
    ) -> None:
        self._kernel = kernel
        self._window = window
        self._forward = forward
        self._metrics = metrics
        self._buffers: dict[tuple[int, int], list[Message]] = {}

    def push(self, src: int, dst: int, message: Message) -> None:
        """Buffer one message for its edge, flushing when the window fills."""
        key = (src, dst)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = self._buffers[key] = []
        buffer.append(message)
        if len(buffer) >= self._window:
            self.flush(key)
        elif len(buffer) == 1:
            self._kernel.call_soon(self.flush, key)

    def flush(self, key: tuple[int, int]) -> None:
        """Emit the buffered messages for one edge (no-op when empty).

        A stale end-of-instant flush (its buffer already emptied by a
        window-full flush) is harmless — it finds nothing to do, or
        flushes a younger buffer a little early, shrinking that bundle.
        """
        buffer = self._buffers.pop(key, None)
        if not buffer:
            return
        src, dst = key
        if len(buffer) == 1:
            self._forward(src, dst, buffer[0])
            return
        if self._metrics is not None:
            self._metrics.record_batch(len(buffer))
        self._forward(src, dst, BatchMessage(messages=tuple(buffer)))

    def flush_all(self) -> None:
        """Flush every pending buffer now (close/teardown hook)."""
        for key in list(self._buffers):
            self.flush(key)

    def pending(self) -> int:
        """Messages currently buffered across all edges (introspection)."""
        return sum(len(buffer) for buffer in self._buffers.values())
