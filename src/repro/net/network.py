"""Network fabric: the full mesh of unreliable channels between n nodes.

Owns one :class:`~repro.net.channel.Channel` per ordered node pair, routes
sends, applies partitions, and reports every send to the metrics
collector.  Self-addressed messages are delivered through a zero-cost
loopback and are *not* counted as network traffic (the paper's message
counts are over the wire).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.analysis.metrics import MetricsCollector
from repro.config import ClusterConfig
from repro.errors import NetworkError
from repro.net.batch import BatchMessage, BatchWindow
from repro.net.channel import Channel
from repro.net.message import Message
from repro.sim.kernel import Kernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import Process

__all__ = ["Network"]


class Network:
    """Connects ``n`` processes through a full mesh of unreliable channels."""

    def __init__(
        self,
        kernel: Kernel,
        config: ClusterConfig,
        metrics: MetricsCollector | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsCollector()
        #: Observability hooks: callables invoked as
        #: ``listener(event, time, src, dst, kind)`` where event is
        #: ``"send"`` or ``"deliver"``.  Used by the trace recorder.
        self.trace_listeners: list = []
        self._processes: dict[int, "Process"] = {}
        self._throttled: dict[int, float] = {}
        self._rng = random.Random(kernel.rng.getrandbits(64))
        self._channels: dict[tuple[int, int], Channel] = {}
        for src in range(config.n):
            for dst in range(config.n):
                if src == dst:
                    continue
                self._channels[(src, dst)] = Channel(
                    kernel,
                    self._rng,
                    config.channel,
                    src,
                    dst,
                    self._deliver,
                    self.metrics,
                )
        # Transport batching exists only when asked for: the flush path
        # schedules kernel callbacks (extra RNG draws under the RANDOM
        # tie-break), so the default window of 1 must not construct it —
        # that keeps seeded schedules byte-identical to the pre-batching
        # fabric.
        self._batcher: BatchWindow | None = None
        if config.channel.batch_window > 1:
            self._batcher = BatchWindow(
                kernel,
                config.channel.batch_window,
                self._channel_send,
                self.metrics,
            )

    # -- wiring ------------------------------------------------------------------

    def attach(self, process: "Process") -> None:
        """Register a process so the fabric can deliver to it."""
        if process.node_id in self._processes:
            raise NetworkError(f"node {process.node_id} already attached")
        if not 0 <= process.node_id < self.config.n:
            raise NetworkError(
                f"node id {process.node_id} outside 0..{self.config.n - 1}"
            )
        self._processes[process.node_id] = process

    def channel(self, src: int, dst: int) -> Channel:
        """The directed channel object between two distinct nodes."""
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise NetworkError(f"no channel {src}->{dst}") from None

    def channels(self) -> list[Channel]:
        """All directed channels (fault injection iterates these)."""
        return list(self._channels.values())

    def in_flight_total(self) -> int:
        """Packets currently in flight across all channels.

        A pull-style depth gauge for the observability registry
        (``net.in_flight``): sampled at collect time only, so the send
        path pays nothing for it.
        """
        return sum(
            channel.in_flight_count for channel in self._channels.values()
        )

    # -- transport ----------------------------------------------------------------

    def send(self, src: int, dst: int, message: Message) -> None:
        """Send one message; loopback if ``src == dst``, else via channel."""
        if src == dst:
            # Local delivery: not a network message, zero loss, tiny delay
            # (still asynchronous so handlers never run re-entrantly).
            self.kernel.call_soon(self._deliver, src, dst, message)
            return
        metrics = self.metrics
        if metrics._enabled:
            # wire_size() is cached per instance, so a broadcast measures
            # its payload once and reuses the size for all n-1 channels.
            metrics.record_send(src, dst, message.KIND, message.wire_size())
        if self.trace_listeners:
            now = self.kernel.now
            kind = message.KIND
            for listener in self.trace_listeners:
                listener("send", now, src, dst, kind)
        if self._batcher is not None:
            if (src, dst) not in self._channels:
                raise NetworkError(f"no channel {src}->{dst}")
            self._batcher.push(src, dst, message)
            return
        channel = self._channels.get((src, dst))
        if channel is None:
            raise NetworkError(f"no channel {src}->{dst}")
        channel.send(message)

    def _channel_send(self, src: int, dst: int, message: Message) -> None:
        """Batcher flush target: submit one (possibly bundled) packet."""
        self._channels[(src, dst)].send(message)

    def _deliver(self, src: int, dst: int, message: Message) -> None:
        process = self._processes.get(dst)
        if process is None:
            return
        if type(message) is BatchMessage:
            # Unbundle below the process layer, preserving FIFO order:
            # algorithms only ever see the original messages.
            for inner in message.messages:
                if self.trace_listeners and src != dst:
                    for listener in self.trace_listeners:
                        listener(
                            "deliver", self.kernel.now, src, dst, inner.KIND
                        )
                process.deliver(src, inner)
            return
        if self.trace_listeners and src != dst:
            for listener in self.trace_listeners:
                listener("deliver", self.kernel.now, src, dst, message.KIND)
        process.deliver(src, message)

    # -- adversary controls ---------------------------------------------------------

    def partition(self, *groups: set[int]) -> None:
        """Block every channel crossing between the given node groups.

        Nodes not mentioned in any group keep full connectivity with every
        group (use explicit groups for a clean split).
        """
        membership: dict[int, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                membership[node_id] = index
        for (src, dst), channel in self._channels.items():
            side_src = membership.get(src)
            side_dst = membership.get(dst)
            channel.blocked = (
                side_src is not None
                and side_dst is not None
                and side_src != side_dst
            )

    def heal(self) -> None:
        """Remove all partitions."""
        for channel in self._channels.values():
            channel.blocked = False

    def throttle(self, node_id: int, factor: float = 10.0) -> None:
        """Make ``node_id`` limp: stretch delays on its channels by ``factor``.

        Models a gray failure — the node stays alive and correct but
        every packet to or from it takes ``factor`` times longer.  A
        channel between two throttled nodes takes the larger factor.
        ``factor=1.0`` restores the node.  Throttling changes no RNG
        draws (the factor multiplies the already-drawn delay), so a
        seeded schedule stays deterministic under it.
        """
        if factor <= 0.0:
            raise NetworkError(f"throttle factor must be > 0, got {factor}")
        if not 0 <= node_id < self.config.n:
            raise NetworkError(
                f"node id {node_id} outside 0..{self.config.n - 1}"
            )
        self._throttled[node_id] = factor
        if factor == 1.0:
            del self._throttled[node_id]
        for (src, dst), channel in self._channels.items():
            channel.delay_factor = max(
                self._throttled.get(src, 1.0), self._throttled.get(dst, 1.0)
            )

    def throttled(self) -> dict[int, float]:
        """Currently throttled nodes and their factors."""
        return dict(self._throttled)
