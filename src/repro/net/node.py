"""Process abstraction: one node of the networked system.

A :class:`Process` owns a node's message handlers, its crash gate, and the
driver of its ``do forever`` loop.  Algorithm classes (in
:mod:`repro.core`) subclass it, register server-side handlers, and expose
client-side operations as coroutines.

Crash semantics follow the paper (Section 2):

* **crash** — the node stops taking steps: incoming messages are dropped
  (a crashed node cannot execute receive steps), sends are suppressed, and
  the do-forever loop blocks on the step gate.
* **resume** — the node takes steps again *without* restarting its program
  (undetectable restart).  In-progress operations simply continue.
* **detectable restart** — the node re-initializes all of its variables
  via :meth:`initialize_state` before taking steps again.  The paper
  assumes this mode when recovering from transient faults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.config import ClusterConfig
from repro.errors import CancelledError, SimulationError
from repro.net.message import Message
from repro.sim.kernel import Kernel, SimTask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network
    from repro.net.quorum import AckCollector

__all__ = ["Process"]


class Process:
    """Base class for one node's protocol instance.

    Subclasses must implement :meth:`initialize_state` (variable
    initialization; re-run on detectable restart) and may implement
    :meth:`do_forever_iteration` (one body of the algorithm's ``do
    forever`` loop — cleanup, gossip, task scheduling).
    """

    def __init__(
        self,
        node_id: int,
        kernel: Kernel,
        network: "Network",
        config: ClusterConfig,
    ) -> None:
        self.node_id = node_id
        self.kernel = kernel
        self.network = network
        self.config = config
        self.gate = kernel.create_gate()
        self._handlers: dict[str, Callable[[int, Message], None]] = {}
        self._ack_sinks: dict[str, list["AckCollector"]] = {}
        self._loop_task: SimTask | None = None
        self._iteration_listeners: list[Callable[[int], None]] = []
        self.iterations_completed = 0
        #: Observability hook (:class:`repro.obs.observe.ProcessObs` or
        #: ``None``).  Algorithm code updates its heal/retransmit counters
        #: behind an ``obs is not None`` test; see ``docs/observability.md``.
        self.obs = None
        network.attach(self)
        self.initialize_state()

    # -- state lifecycle -----------------------------------------------------

    def initialize_state(self) -> None:
        """(Re)initialize all protocol variables.

        Called once at construction and again on detectable restart.  The
        paper notes initialization is *optional* in the self-stabilizing
        context — the transient-fault tests exercise exactly that by
        scrambling the state this method sets up.
        """

    @property
    def crashed(self) -> bool:
        """Whether the node is currently crashed (taking no steps)."""
        return not self.gate.is_open

    def crash(self) -> None:
        """Stop taking steps: drop deliveries, suppress sends, halt loops."""
        self.gate.close()

    def resume(self, restart: bool = False) -> None:
        """Return to taking steps.

        With ``restart=True`` this is a *detectable* restart: all protocol
        variables are re-initialized first (the mode the paper assumes for
        nodes that failed during the transient-fault recovery period).
        """
        if restart:
            self.initialize_state()
        self.gate.open()

    # -- handler registration and delivery ---------------------------------------

    def register_handler(
        self, kind: str, handler: Callable[[int, Message], None]
    ) -> None:
        """Install the server-side handler for one message kind."""
        if kind in self._handlers:
            raise SimulationError(
                f"node {self.node_id}: handler for {kind!r} already registered"
            )
        self._handlers[kind] = handler

    def deliver(self, sender: int, message: Message) -> None:
        """Entry point used by the network fabric for every arriving packet."""
        if self.crashed:
            # A crashed node takes no receive steps; the packet is lost.
            return
        obs = self.obs
        if obs is not None:
            # Attribution: time this packet against the node's open
            # quorum round of its kind (a dict miss for non-ack kinds).
            # Runs before the ack sinks so late replies are recorded
            # even after the collector has been removed.
            obs.on_reply(sender, message.kind, self.kernel.now)
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(sender, message)
        for collector in self._ack_sinks.get(message.kind, ()):
            collector.offer(sender, message)

    def add_ack_sink(self, kind: str, collector: "AckCollector") -> None:
        """Route arriving ``kind`` messages into a client-side collector."""
        self._ack_sinks.setdefault(kind, []).append(collector)

    def remove_ack_sink(self, kind: str, collector: "AckCollector") -> None:
        """Detach a collector registered via :meth:`add_ack_sink`."""
        sinks = self._ack_sinks.get(kind)
        if sinks and collector in sinks:
            sinks.remove(collector)

    # -- sending --------------------------------------------------------------------

    def send(self, dst: int, message: Message) -> None:
        """Send one message (suppressed while crashed)."""
        if self.crashed:
            return
        self.network.send(self.node_id, dst, message)

    def broadcast(self, message: Message, include_self: bool = True) -> None:
        """Send to every node; self-delivery uses the zero-cost loopback.

        The paper's client-side ``broadcast`` goes to all of 𝒫 and the
        sender's own server-side participates (its ack counts toward the
        majority); gossip (``for k ≠ i``) passes ``include_self=False``.
        """
        if self.crashed:
            return
        for dst in range(self.config.n):
            if dst == self.node_id and not include_self:
                continue
            self.network.send(self.node_id, dst, message)

    # -- do-forever loop ---------------------------------------------------------------

    async def do_forever_iteration(self) -> None:
        """One body of the algorithm's ``do forever`` loop (default: no-op)."""

    def add_iteration_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with ``node_id`` after each iteration."""
        self._iteration_listeners.append(listener)

    def start(self) -> None:
        """Start the do-forever loop as a background task."""
        if self._loop_task is not None and not self._loop_task.done():
            raise SimulationError(f"node {self.node_id}: loop already running")
        self._loop_task = self.kernel.create_task(
            self._run_forever(), name=f"node{self.node_id}.do_forever"
        )

    def stop(self) -> None:
        """Cancel the do-forever loop task (end of an experiment)."""
        if self._loop_task is not None:
            self._loop_task.cancel()
            self._loop_task = None

    async def _run_forever(self) -> None:
        try:
            while True:
                await self.gate.passthrough()
                await self.do_forever_iteration()
                self.iterations_completed += 1
                for listener in self._iteration_listeners:
                    listener(self.node_id)
                await self.kernel.sleep(self.config.gossip_interval)
        except CancelledError:
            raise

    # -- misc ---------------------------------------------------------------------------

    @property
    def majority(self) -> int:
        """Majority quorum size for this cluster."""
        return self.config.majority

    def peers(self) -> list[int]:
        """All node ids except this node's."""
        return [k for k in range(self.config.n) if k != self.node_id]

    def __repr__(self) -> str:
        status = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} p{self.node_id} {status}>"
