"""Unreliable point-to-point channel model.

The paper's communication model (Section 2): bounded-capacity channels
with no delay guarantees, where packets may be *lost, duplicated, and
reordered*.  Reordering falls out of per-packet random delays; loss and
duplication are independent seeded draws; capacity overflow drops the new
packet (bounded channels are a prerequisite for self-stabilization).

Channels also expose their in-flight packets to the transient-fault
injector (:mod:`repro.fault.transient`), since the paper's arbitrary
initial state includes corrupted channel contents.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.analysis.metrics import MetricsCollector
from repro.config import ChannelConfig
from repro.net.message import Message, invalidate_wire_cache
from repro.sim.kernel import Kernel

__all__ = ["Channel"]


class Channel:
    """One directed channel ``src → dst`` with loss/duplication/reorder/delay.

    A full mesh holds ``n·(n-1)`` of these and every wire message crosses
    one, so the send path is kept allocation-free: ``__slots__``, config
    knobs hoisted to attributes, and a plain integer token counter.

    **RNG draw-order contract** (frozen by ``tests/test_rng_draw_order.py``;
    seeded schedules depend on it, so fast-path refactors must not change
    it): a *blocked* send draws nothing; otherwise ``send`` draws (1) the
    loss uniform, then — if the packet survives loss and fits under the
    capacity bound — (2) the delay uniform, then (3) the duplication
    uniform, then (4) the duplicate's delay uniform if duplication fired
    and the duplicate fits.  A capacity drop consumes *no* delay draw: the
    decision precedes the draw.
    """

    __slots__ = (
        "_kernel",
        "_rng",
        "_config",
        "src",
        "dst",
        "_deliver",
        "_metrics",
        "_in_flight",
        "_next_token",
        "blocked",
        "_loss_p",
        "_dup_p",
        "_capacity",
        "_min_delay",
        "_max_delay",
        "delay_factor",
    )

    def __init__(
        self,
        kernel: Kernel,
        rng: random.Random,
        config: ChannelConfig,
        src: int,
        dst: int,
        deliver: Callable[[int, int, Message], None],
        metrics: MetricsCollector | None = None,
    ) -> None:
        self._kernel = kernel
        self._rng = rng
        self._config = config
        self.src = src
        self.dst = dst
        self._deliver = deliver
        self._metrics = metrics
        self._in_flight: dict[int, Message] = {}
        self._next_token = 0
        #: When True, every packet is dropped (used to model partitions).
        self.blocked = False
        #: Multiplier applied to the drawn delay — models a limping
        #: endpoint (``Network.throttle``).  Applied *after* the delay
        #: uniform is drawn, so throttling consumes no extra RNG draws
        #: and the draw-order contract above is untouched (``x * 1.0``
        #: is exact in IEEE arithmetic, so the default changes nothing).
        self.delay_factor = 1.0
        self._loss_p = config.loss_probability
        self._dup_p = config.duplication_probability
        self._capacity = config.capacity
        self._min_delay = config.min_delay
        self._max_delay = config.max_delay

    # -- introspection / fault hooks -----------------------------------------

    @property
    def in_flight_count(self) -> int:
        """Number of packets currently in flight."""
        return len(self._in_flight)

    def in_flight_messages(self) -> list[Message]:
        """The packets currently in flight (fault injectors may inspect)."""
        return list(self._in_flight.values())

    def corrupt_in_flight(
        self, mutate: Callable[[Message], Message | None]
    ) -> int:
        """Apply ``mutate`` to every in-flight packet (transient faults).

        ``mutate`` returns a replacement message, or ``None`` to delete the
        packet.  Returns the number of packets affected.
        """
        affected = 0
        for token, message in list(self._in_flight.items()):
            replacement = mutate(message)
            affected += 1
            if replacement is None:
                del self._in_flight[token]
            else:
                # A mutated packet's cached encoding/size is stale; drop it
                # so the fast path re-measures the corrupted contents.
                invalidate_wire_cache(replacement)
                self._in_flight[token] = replacement
        return affected

    def drop_all_in_flight(self) -> int:
        """Silently drop every in-flight packet; returns how many."""
        dropped = len(self._in_flight)
        self._in_flight.clear()
        return dropped

    # -- sending ---------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Submit a packet, applying the loss/duplication/capacity model.

        The metrics collector has already counted the send (a lost message
        was still *sent*); this method only models the channel's behaviour.
        """
        if self.blocked:
            return
        rng = self._rng
        if rng.random() < self._loss_p:
            if self._metrics is not None:
                self._metrics.record_loss()
            return
        self._enqueue(message)
        if rng.random() < self._dup_p:
            if self._metrics is not None:
                self._metrics.record_duplication()
            self._enqueue(message)

    def _enqueue(self, message: Message) -> None:
        in_flight = self._in_flight
        if len(in_flight) >= self._capacity:
            if self._metrics is not None:
                self._metrics.record_capacity_drop()
            return
        token = self._next_token
        self._next_token = token + 1
        in_flight[token] = message
        delay = self._rng.uniform(self._min_delay, self._max_delay)
        self._kernel.call_later(delay * self.delay_factor, self._arrive, token)

    def _arrive(self, token: int) -> None:
        message = self._in_flight.pop(token, None)
        if message is None:
            # Dropped or consumed by a fault injector while in flight.
            return
        if self.blocked:
            return
        self._deliver(self.src, self.dst, message)
