"""Unreliable point-to-point channel model.

The paper's communication model (Section 2): bounded-capacity channels
with no delay guarantees, where packets may be *lost, duplicated, and
reordered*.  Reordering falls out of per-packet random delays; loss and
duplication are independent seeded draws; capacity overflow drops the new
packet (bounded channels are a prerequisite for self-stabilization).

Channels also expose their in-flight packets to the transient-fault
injector (:mod:`repro.fault.transient`), since the paper's arbitrary
initial state includes corrupted channel contents.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable

from repro.analysis.metrics import MetricsCollector
from repro.config import ChannelConfig
from repro.net.message import Message
from repro.sim.kernel import Kernel

__all__ = ["Channel"]


class Channel:
    """One directed channel ``src → dst`` with loss/duplication/reorder/delay."""

    def __init__(
        self,
        kernel: Kernel,
        rng: random.Random,
        config: ChannelConfig,
        src: int,
        dst: int,
        deliver: Callable[[int, int, Message], None],
        metrics: MetricsCollector | None = None,
    ) -> None:
        self._kernel = kernel
        self._rng = rng
        self._config = config
        self.src = src
        self.dst = dst
        self._deliver = deliver
        self._metrics = metrics
        self._in_flight: dict[int, Message] = {}
        self._tokens = itertools.count()
        #: When True, every packet is dropped (used to model partitions).
        self.blocked = False

    # -- introspection / fault hooks -----------------------------------------

    @property
    def in_flight_count(self) -> int:
        """Number of packets currently in flight."""
        return len(self._in_flight)

    def in_flight_messages(self) -> list[Message]:
        """The packets currently in flight (fault injectors may inspect)."""
        return list(self._in_flight.values())

    def corrupt_in_flight(
        self, mutate: Callable[[Message], Message | None]
    ) -> int:
        """Apply ``mutate`` to every in-flight packet (transient faults).

        ``mutate`` returns a replacement message, or ``None`` to delete the
        packet.  Returns the number of packets affected.
        """
        affected = 0
        for token, message in list(self._in_flight.items()):
            replacement = mutate(message)
            affected += 1
            if replacement is None:
                del self._in_flight[token]
            else:
                self._in_flight[token] = replacement
        return affected

    def drop_all_in_flight(self) -> int:
        """Silently drop every in-flight packet; returns how many."""
        dropped = len(self._in_flight)
        self._in_flight.clear()
        return dropped

    # -- sending ---------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Submit a packet, applying the loss/duplication/capacity model.

        The metrics collector has already counted the send (a lost message
        was still *sent*); this method only models the channel's behaviour.
        """
        if self.blocked:
            return
        if self._rng.random() < self._config.loss_probability:
            if self._metrics is not None:
                self._metrics.record_loss()
            return
        self._enqueue(message)
        if self._rng.random() < self._config.duplication_probability:
            if self._metrics is not None:
                self._metrics.record_duplication()
            self._enqueue(message)

    def _enqueue(self, message: Message) -> None:
        if len(self._in_flight) >= self._config.capacity:
            if self._metrics is not None:
                self._metrics.record_capacity_drop()
            return
        token = next(self._tokens)
        self._in_flight[token] = message
        delay = self._rng.uniform(self._config.min_delay, self._config.max_delay)
        self._kernel.call_later(delay, self._arrive, token)

    def _arrive(self, token: int) -> None:
        message = self._in_flight.pop(token, None)
        if message is None:
            # Dropped or consumed by a fault injector while in flight.
            return
        if self.blocked:
            return
        self._deliver(self.src, self.dst, message)
