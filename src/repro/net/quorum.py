"""Quorum service: the ``repeat broadcast … until majority`` pattern.

Every client-side phase of every algorithm in the paper has the shape

    repeat broadcast M until matching replies received from a majority

executed on top of channels that lose, duplicate, and reorder packets.
The paper assumes a *quorum service* (citing Dolev-Petig-Schiller §13)
that masks those channel failures; this module is that service:

* :class:`AckCollector` gathers replies from **distinct** senders that
  satisfy a match predicate (duplicates collapse; stale or reordered
  replies are rejected by the predicate, e.g. ``ssnJ = ssn`` or
  ``regJ ⪰ lReg``), completing once a threshold is reached.
* :func:`broadcast_until` re-broadcasts the request on a fixed interval
  until the collector completes — under communication fairness, a message
  sent infinitely often is received infinitely often, so termination
  follows whenever a majority of nodes is alive.
"""

from __future__ import annotations

from typing import Callable

from repro.net.message import Message
from repro.net.node import Process

__all__ = ["AckCollector", "broadcast_until"]


class AckCollector:
    """Collects matching replies from distinct senders up to a threshold."""

    def __init__(
        self,
        process: Process,
        kind: str,
        threshold: int,
        match: Callable[[int, Message], bool] | None = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._process = process
        self._kind = kind
        self._threshold = threshold
        self._match = match
        self._replies: dict[int, Message] = {}
        self._event = process.kernel.create_event()
        self._round = None

    # -- lifecycle --------------------------------------------------------------

    def __enter__(self) -> "AckCollector":
        # Attribution: open a quorum-round record on the node's obs
        # struct.  The round outlives the collector — replies landing
        # after the quorum completed are exactly the stragglers the
        # blame tables exist to expose (see repro.obs.attribution).
        obs = self._process.obs
        if obs is not None:
            self._round = obs.begin_round(self._kind, self._threshold)
        self._process.add_ack_sink(self._kind, self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._process.remove_ack_sink(self._kind, self)

    # -- collection ---------------------------------------------------------------

    def offer(self, sender: int, message: Message) -> bool:
        """Feed one arriving reply; returns whether it was accepted."""
        if self._match is not None and not self._match(sender, message):
            return False
        self._replies[sender] = message
        if len(self._replies) >= self._threshold:
            round_ = self._round
            if round_ is not None and round_.completer is None:
                round_.completer = sender
                round_.end = self._process.kernel.now
            self._event.set()
        return True

    @property
    def satisfied(self) -> bool:
        """Whether the threshold has been reached."""
        return len(self._replies) >= self._threshold

    @property
    def replies(self) -> dict[int, Message]:
        """Accepted replies, keyed by sender (last reply per sender wins)."""
        return dict(self._replies)

    def reply_messages(self) -> list[Message]:
        """The accepted reply messages (the ``Rec`` set of ``merge(Rec)``)."""
        return list(self._replies.values())

    async def wait(self) -> None:
        """Block until the threshold is reached."""
        await self._event.wait()


async def broadcast_until(
    process: Process,
    make_message: Callable[[], Message],
    collector: AckCollector,
    include_self: bool = True,
) -> None:
    """Re-broadcast ``make_message()`` until ``collector`` is satisfied.

    The message is rebuilt on every retransmission so that it carries the
    node's *current* state (the paper's loops re-broadcast ``reg`` which
    may have been merged meanwhile).  While the node is crashed the loop
    holds at the step gate; on resume it picks up where it left off
    (undetectable restart).
    """
    interval = process.config.retransmit_interval
    first = True
    while not collector.satisfied:
        await process.gate.passthrough()
        if not first:
            # Every broadcast after the first is a retransmission — the
            # quantity the observability layer attributes to the active
            # operation span (lossy channels show up here directly).
            obs = process.obs
            if obs is not None:
                obs.retransmit()
        first = False
        process.broadcast(make_message(), include_self=include_self)
        try:
            await process.kernel.wait_for(collector.wait(), timeout=interval)
        except TimeoutError:
            continue
