"""Reliable broadcast over unreliable channels.

Algorithm 2 (the DGFR always-terminating baseline) assumes a
``reliableBroadcast`` primitive for its ``SNAP`` (task announcement) and
``END`` (task result) messages: if any correct node delivers a message,
every correct node delivers it.

This implementation combines two classic mechanisms:

* **eager relay** — the first time a node learns a message it assumes
  responsibility for it and starts retransmitting to every peer, so a
  sender that crashes mid-broadcast cannot strand a partial delivery;
* **per-peer acknowledgements with exponential backoff** — retransmission
  to a peer stops once the peer acks, and the retry period doubles up to a
  cap so permanently crashed peers cost vanishing bandwidth.

The service is deliberately *not* self-stabilizing and uses unbounded
per-message bookkeeping — exactly the property of Algorithm 2 that the
paper's Algorithm 3 removes (bounded space being a prerequisite for
self-stabilization; see DESIGN.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.errors import CancelledError
from repro.net.message import Message
from repro.net.node import Process

__all__ = ["ReliableBroadcast", "RbDataMessage", "RbAckMessage"]

#: Initial retransmission period multiplier (relative to the cluster's
#: retransmit interval) and the backoff cap.
_BACKOFF_FACTOR = 2.0
_BACKOFF_CAP = 16.0


@dataclass(frozen=True)
class RbDataMessage(Message):
    """A reliable-broadcast payload tagged with its unique (origin, seq)."""

    KIND = "RB"
    origin: int
    seq: int
    payload: Message


@dataclass(frozen=True)
class RbAckMessage(Message):
    """Per-receiver acknowledgement of one (origin, seq)."""

    KIND = "RBack"
    origin: int
    seq: int


class ReliableBroadcast:
    """Reliable-broadcast endpoint attached to one :class:`Process`.

    Parameters
    ----------
    process:
        The owning node; handlers for the RB wire messages are registered
        on it.
    deliver:
        Application callback ``deliver(origin, payload)`` invoked exactly
        once per broadcast message, in arrival order at this node.
    data_cls, ack_cls:
        The wire message classes to use.  One process can host several
        independent reliable-broadcast endpoints as long as each uses its
        own message kinds — the consensus layer
        (:mod:`repro.consensus`) rides on dedicated ``CS_RB`` carriers so
        its traffic never collides with Algorithm 2's ``RB`` stream.
    """

    def __init__(
        self,
        process: Process,
        deliver: Callable[[int, Message], None],
        data_cls: type[RbDataMessage] = RbDataMessage,
        ack_cls: type[RbAckMessage] = RbAckMessage,
    ) -> None:
        self._process = process
        self._deliver = deliver
        self._data_cls = data_cls
        self._ack_cls = ack_cls
        self._seq = itertools.count(1)
        self._known: dict[tuple[int, int], Message] = {}
        self._acked: dict[tuple[int, int], set[int]] = {}
        process.register_handler(data_cls.KIND, self._on_data)
        process.register_handler(ack_cls.KIND, self._on_ack)

    def broadcast(self, payload: Message) -> None:
        """Reliably broadcast ``payload`` to every node (including self)."""
        message_id = (self._process.node_id, next(self._seq))
        self._learn(message_id, payload)

    # -- wire handlers ---------------------------------------------------------

    def _on_data(self, sender: int, message: RbDataMessage) -> None:
        message_id = (message.origin, message.seq)
        self._process.send(
            sender, self._ack_cls(origin=message.origin, seq=message.seq)
        )
        self._learn(message_id, message.payload)

    def _on_ack(self, sender: int, message: RbAckMessage) -> None:
        acked = self._acked.get((message.origin, message.seq))
        if acked is not None:
            acked.add(sender)

    # -- core -----------------------------------------------------------------------

    def _learn(self, message_id: tuple[int, int], payload: Message) -> None:
        if message_id in self._known:
            return
        self._known[message_id] = payload
        self._acked[message_id] = {self._process.node_id}
        self._deliver(message_id[0], payload)
        self._process.kernel.create_task(
            self._retransmit(message_id, payload),
            name=f"rb{self._process.node_id}.{message_id}",
        )

    async def _retransmit(
        self, message_id: tuple[int, int], payload: Message
    ) -> None:
        """Push the message to every un-acked peer until all have acked."""
        origin, seq = message_id
        wire = self._data_cls(origin=origin, seq=seq, payload=payload)
        interval = self._process.config.retransmit_interval
        try:
            while True:
                acked = self._acked[message_id]
                pending = [
                    peer for peer in self._process.peers() if peer not in acked
                ]
                if not pending:
                    return
                await self._process.gate.passthrough()
                for peer in pending:
                    self._process.send(peer, wire)
                await self._process.kernel.sleep(interval)
                interval = min(
                    interval * _BACKOFF_FACTOR,
                    self._process.config.retransmit_interval * _BACKOFF_CAP,
                )
        except CancelledError:
            raise
