"""Broadcast primitives (reliable broadcast for the Algorithm 2 baseline)."""

from repro.broadcast.reliable import RbAckMessage, RbDataMessage, ReliableBroadcast

__all__ = ["RbAckMessage", "RbDataMessage", "ReliableBroadcast"]
