"""Deterministic discrete-event simulation kernel.

This package provides the step scheduler underlying every simulated
execution: a seeded, reproducible event loop with simulated time, futures,
tasks, and synchronization primitives (:class:`~repro.sim.kernel.Event`,
:class:`~repro.sim.kernel.Gate`).
"""

from repro.sim.kernel import Event, Gate, Kernel, SimFuture, SimTask, TieBreak

__all__ = ["Event", "Gate", "Kernel", "SimFuture", "SimTask", "TieBreak"]
