"""Deterministic coroutine kernel for discrete-event simulation.

The paper models a distributed system as an interleaving of atomic *steps*
(Section 2).  This kernel is the step scheduler: it owns a simulated clock,
a priority queue of pending callbacks, and a set of tasks (coroutines).
Every source of nondeterminism is drawn from a single seeded RNG, so a run
is a pure function of ``(program, seed)`` — which is what makes the paper's
adversarial-scheduling and recovery claims mechanically testable.

The API deliberately mirrors a small subset of :mod:`asyncio`
(futures, tasks, ``sleep``, ``gather``) so that algorithm code written
against it reads like ordinary ``async`` Python and can also be driven by a
real asyncio loop through :mod:`repro.runtime`.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Awaitable, Callable, Coroutine, Generator, Iterable
from typing import Any

from repro.errors import (
    CancelledError,
    DeadlockError,
    InvalidTransitionError,
    SimulationError,
)

__all__ = [
    "Kernel",
    "SimFuture",
    "SimTask",
    "Event",
    "Gate",
    "TieBreak",
]

_PENDING = "pending"
_DONE = "done"
_CANCELLED = "cancelled"


class TieBreak:
    """Strategies for ordering events scheduled at the same simulated time.

    ``FIFO`` replays insertion order; ``RANDOM`` draws a random priority from
    the kernel RNG at scheduling time, which models an adversarial
    asynchronous scheduler while remaining deterministic per seed;
    ``SCRIPTED`` consults an explicit decision sequence at every
    same-instant choice point — the hook the stateless model checker
    (:mod:`repro.verify`) uses to enumerate interleavings exhaustively.
    """

    FIFO = "fifo"
    RANDOM = "random"
    SCRIPTED = "scripted"

    _VALID = (FIFO, RANDOM, SCRIPTED)


class SimFuture:
    """A single-assignment result container, awaitable from kernel tasks."""

    __slots__ = ("_kernel", "_state", "_result", "_exception", "_callbacks")

    def __init__(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        self._state = _PENDING
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []

    # -- inspection --------------------------------------------------------

    def done(self) -> bool:
        """Return ``True`` once a result, exception, or cancellation is set."""
        return self._state != _PENDING

    def cancelled(self) -> bool:
        """Return ``True`` if the future was cancelled."""
        return self._state == _CANCELLED

    def result(self) -> Any:
        """Return the stored result, raising the stored exception if any."""
        if self._state == _PENDING:
            raise InvalidTransitionError("result() called on a pending future")
        if self._state == _CANCELLED:
            raise CancelledError("future was cancelled")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> BaseException | None:
        """Return the stored exception, or ``None`` on success."""
        if self._state == _PENDING:
            raise InvalidTransitionError("exception() called on a pending future")
        if self._state == _CANCELLED:
            raise CancelledError("future was cancelled")
        return self._exception

    # -- completion --------------------------------------------------------

    def set_result(self, value: Any) -> None:
        """Complete the future successfully with ``value``."""
        if self._state != _PENDING:
            raise InvalidTransitionError(f"future already {self._state}")
        self._state = _DONE
        self._result = value
        self._schedule_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        """Complete the future with an exception."""
        if self._state != _PENDING:
            raise InvalidTransitionError(f"future already {self._state}")
        if isinstance(exc, type):
            exc = exc()
        self._state = _DONE
        self._exception = exc
        self._schedule_callbacks()

    def cancel(self) -> bool:
        """Cancel the future; returns ``False`` if it was already done."""
        if self._state != _PENDING:
            return False
        self._state = _CANCELLED
        self._schedule_callbacks()
        return True

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Run ``callback(self)`` when the future completes (or now if done)."""
        if self._state != _PENDING:
            self._kernel.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def _schedule_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._kernel.call_soon(callback, self)

    # -- awaiting ----------------------------------------------------------

    def __await__(self) -> Generator["SimFuture", None, Any]:
        if self._state == _PENDING:
            yield self
        return self.result()


class SimTask(SimFuture):
    """A coroutine driven by the kernel; completes with the coroutine result."""

    __slots__ = ("_coro", "name", "_awaiting", "_must_cancel")

    def __init__(
        self, kernel: "Kernel", coro: Coroutine[Any, Any, Any], name: str = ""
    ) -> None:
        super().__init__(kernel)
        self._coro = coro
        self.name = name or getattr(coro, "__name__", "task")
        self._awaiting: SimFuture | None = None
        self._must_cancel = False
        kernel.call_soon(self._step, None)

    def __del__(self) -> None:
        # Tasks left unstarted when a run ends would otherwise trigger
        # "coroutine was never awaited" warnings at GC time.
        try:
            self._coro.close()
        except (RuntimeError, AttributeError):  # pragma: no cover
            pass

    def cancel(self) -> bool:
        """Request cancellation by injecting :class:`CancelledError`.

        Unlike a plain future, a running task observes the cancellation at
        its next suspension point, giving it a chance to clean up.
        """
        if self.done():
            return False
        self._must_cancel = True
        awaiting = self._awaiting
        if awaiting is not None and not awaiting.done():
            # Wake the task so it observes the cancellation promptly.
            awaiting.cancel()
        else:
            self._kernel.call_soon(self._step, None)
        return True

    def _step(self, completed: SimFuture | None) -> None:
        if self.done():
            return
        self._awaiting = None
        try:
            if self._must_cancel:
                self._must_cancel = False
                yielded = self._coro.throw(CancelledError("task cancelled"))
            elif completed is not None and completed.cancelled():
                yielded = self._coro.throw(CancelledError("awaited future cancelled"))
            elif completed is not None and completed.exception() is not None:
                yielded = self._coro.throw(completed.exception())
            else:
                yielded = self._coro.send(None)
        except StopIteration as stop:
            if not self.done():
                self.set_result(stop.value)
            return
        except CancelledError:
            if not self.done():
                super().cancel()
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via the future
            if not self.done():
                self.set_exception(exc)
            return
        if not isinstance(yielded, SimFuture):
            self._fail_foreign_await(yielded)
            return
        self._awaiting = yielded
        yielded.add_done_callback(self._step)

    def _fail_foreign_await(self, yielded: Any) -> None:
        """Handle a coroutine awaiting something the kernel doesn't own.

        The error is thrown into the coroutine (so it can clean up), but —
        unlike a bare ``throw`` — the outcome always completes the task's
        future: a coroutine that swallows the error must not leave the task
        pending forever (no callback would ever fire again).
        """
        error = SimulationError(
            f"task {self.name!r} awaited a non-kernel object: {yielded!r}"
        )
        try:
            self._coro.throw(error)
        except StopIteration as stop:
            # The coroutine handled the error and returned normally.
            if not self.done():
                self.set_result(stop.value)
        except CancelledError:
            if not self.done():
                super().cancel()
        except BaseException as exc:  # noqa: BLE001 - surfaced via the future
            if not self.done():
                self.set_exception(exc)
        else:
            # The coroutine swallowed the error and yielded again; there is
            # nothing the kernel can resume it with — fail deterministically
            # instead of leaving the task pending forever.
            self._coro.close()
            if not self.done():
                self.set_exception(error)


class _Timer(SimFuture):
    """A pooled one-shot timer future backing :meth:`Kernel.sleep`.

    ``sleep`` is the single hottest allocation site in a simulation (every
    do-forever loop, retransmission loop, and workload pacer sleeps once per
    iteration).  Instead of allocating a fresh future plus a guard lambda per
    sleep, the kernel recycles ``_Timer`` objects through a free list.  A
    generation counter makes stale heap entries harmless: a timer callback
    only completes the future if the generation it captured at scheduling
    time is still current (cancellation bumps the generation when the timer
    is recycled, so a late firing for a previous occupant is a no-op).
    """

    __slots__ = ("_gen",)

    def __init__(self, kernel: "Kernel") -> None:
        super().__init__(kernel)
        self._gen = 0

    def _fire(self, gen: int) -> None:
        if gen == self._gen and self._state == _PENDING:
            self.set_result(None)


class Event:
    """A level-triggered flag: awaiting :meth:`wait` blocks until :meth:`set`."""

    __slots__ = ("_kernel", "_is_set", "_waiters")

    def __init__(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        self._is_set = False
        self._waiters: list[SimFuture] = []

    def is_set(self) -> bool:
        """Return whether the event is currently set."""
        return self._is_set

    def set(self) -> None:
        """Set the flag and wake every waiter."""
        if self._is_set:
            return
        self._is_set = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def clear(self) -> None:
        """Reset the flag; subsequent waiters block until the next set()."""
        self._is_set = False

    async def wait(self) -> None:
        """Block until the event is set (returns immediately if already set)."""
        if self._is_set:
            return
        waiter = self._kernel.create_future()
        self._waiters.append(waiter)
        await waiter


class Gate:
    """A pass-through that can be closed; models a crashed node's step gate.

    While the gate is open, :meth:`passthrough` completes immediately.  While
    closed, callers queue up until the gate reopens — exactly the semantics
    of a node that stops taking steps and later resumes without restarting
    its program (the paper's *undetectable restart*).
    """

    __slots__ = ("_kernel", "_open", "_waiters")

    def __init__(self, kernel: "Kernel", open_: bool = True) -> None:
        self._kernel = kernel
        self._open = open_
        self._waiters: list[SimFuture] = []

    @property
    def is_open(self) -> bool:
        """Whether callers currently pass through without blocking."""
        return self._open

    def close(self) -> None:
        """Close the gate; subsequent passthrough() calls block."""
        self._open = False

    def open(self) -> None:
        """Open the gate, releasing every blocked caller."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def passthrough(self) -> None:
        """Return when the gate is open, blocking while it is closed."""
        while not self._open:
            waiter = self._kernel.create_future()
            self._waiters.append(waiter)
            await waiter


class Kernel:
    """Deterministic discrete-event scheduler with a simulated clock.

    Parameters
    ----------
    seed:
        Seed for the kernel RNG.  All scheduling nondeterminism (tie-breaks)
        and any library randomness (channel delays, loss) derives from RNGs
        seeded from this value, so runs are reproducible.
    tie_break:
        How same-timestamp events are ordered; see :class:`TieBreak`.
    """

    def __init__(self, seed: int = 0, tie_break: str = TieBreak.FIFO) -> None:
        if tie_break not in TieBreak._VALID:
            raise SimulationError(f"unknown tie_break: {tie_break!r}")
        self.rng = random.Random(seed)
        self._tie_break = tie_break
        # Mode flags hoisted out of the hot path (string compares per event
        # add up at millions of events per run).
        self._random_tie = tie_break == TieBreak.RANDOM
        self._scripted = tie_break == TieBreak.SCRIPTED
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, float, int, Callable[..., None], tuple]] = []
        self._events_processed = 0
        self._timer_pool: list[_Timer] = []
        #: Observability hook (:class:`repro.obs.observe.KernelStats` or
        #: ``None``).  When set, the dispatch loop records same-instant
        #: batch sizes and ``sleep`` records timer-pool hits/misses —
        #: plain integer increments, so attaching it never perturbs a
        #: seeded schedule.  When ``None`` (the default) the hot path
        #: pays a single attribute test.
        self.obs = None
        #: SCRIPTED mode: the decision to take at the k-th same-instant
        #: choice point (index into the candidate list; 0 beyond the end).
        self.decision_script: list[int] = []
        #: Per choice point, (choice_taken, n_candidates).  Written by
        #: SCRIPTED runs and by RANDOM runs with :attr:`capture_decisions`.
        self.decision_log: list[tuple[int, int]] = []
        #: RANDOM mode only: when set, every same-instant tie is logged to
        #: :attr:`decision_log` as the index the random priorities chose
        #: *within the FIFO (insertion-order) candidate list* — exactly the
        #: encoding SCRIPTED mode consumes.  A failing random run can then
        #: be replayed as an explicit decision script (the fuzz shrinker's
        #: schedule-pinning step).  Capturing never changes what the run
        #: does: the chosen event is still the heap minimum and no extra
        #: RNG draws happen; it only forgoes the same-instant batch
        #: dispatch fast path.
        self.capture_decisions = False

    # -- clock & scheduling --------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far (a step counter)."""
        return self._events_processed

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at simulated time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        self._seq += 1
        priority = self.rng.random() if self._random_tie else 0.0
        heapq.heappush(self._heap, (when, priority, self._seq, callback, args))

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` after ``delay`` units of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq += 1
        priority = self.rng.random() if self._random_tie else 0.0
        heapq.heappush(
            self._heap, (self._now + delay, priority, self._seq, callback, args)
        )

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at the current simulated time."""
        self._seq += 1
        priority = self.rng.random() if self._random_tie else 0.0
        heapq.heappush(self._heap, (self._now, priority, self._seq, callback, args))

    # -- primitives ----------------------------------------------------------

    def create_future(self) -> SimFuture:
        """Create a pending future bound to this kernel."""
        return SimFuture(self)

    def create_task(self, coro: Coroutine[Any, Any, Any], name: str = "") -> SimTask:
        """Wrap a coroutine in a task scheduled to start at the current time."""
        return SimTask(self, coro, name)

    def create_event(self) -> Event:
        """Create an :class:`Event` bound to this kernel."""
        return Event(self)

    def create_gate(self, open_: bool = True) -> Gate:
        """Create a :class:`Gate` bound to this kernel."""
        return Gate(self, open_)

    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for ``delay`` units of simulated time."""
        pool = self._timer_pool
        obs = self.obs
        if pool:
            timer = pool.pop()
            if obs is not None:
                obs.timer_pool_hits += 1
        else:
            timer = _Timer(self)
            if obs is not None:
                obs.timer_pool_misses += 1
        gen = timer._gen
        self.call_later(delay, timer._fire, gen)
        try:
            await timer
        finally:
            # Recycle the timer: bump the generation so the pending heap
            # entry (if the sleep was cancelled before it fired) can never
            # complete the next occupant, reset the state, and return it to
            # the pool.  A timer whose completion callbacks have not drained
            # (coroutine torn down mid-step) is simply left to the GC.
            timer._gen = gen + 1
            if timer._state != _PENDING and not timer._callbacks:
                timer._state = _PENDING
                timer._result = None
                timer._exception = None
                if len(pool) < 1024:
                    pool.append(timer)

    def gather(self, awaitables: Iterable[Awaitable[Any]]) -> SimFuture:
        """Aggregate awaitables into one future resolving to a result list.

        The first exception among children is propagated; remaining children
        keep running (matching ``asyncio.gather`` defaults closely enough for
        our tests and harness code).
        """
        futures = [self._ensure_future(a) for a in awaitables]
        aggregate = self.create_future()
        if not futures:
            aggregate.set_result([])
            return aggregate
        remaining = len(futures)

        def _on_done(child: SimFuture) -> None:
            nonlocal remaining
            if aggregate.done():
                return
            if child.cancelled():
                aggregate.cancel()
                return
            if child.exception() is not None:
                aggregate.set_exception(child.exception())
                return
            remaining -= 1
            if remaining == 0:
                aggregate.set_result([f.result() for f in futures])

        for future in futures:
            future.add_done_callback(_on_done)
        return aggregate

    def _ensure_future(self, awaitable: Awaitable[Any]) -> SimFuture:
        if isinstance(awaitable, SimFuture):
            return awaitable
        if isinstance(awaitable, Coroutine):
            return self.create_task(awaitable)
        raise SimulationError(f"cannot convert {awaitable!r} to a kernel future")

    async def first_of(
        self,
        *awaitables: Awaitable[Any],
        timeout: float | None = None,
        cancel_on_timeout: bool = True,
    ) -> int:
        """Await until any of the awaitables completes; return its index.

        When one wins, its siblings are cancelled.  Returns ``-1`` if
        ``timeout`` elapses first — in that case the awaitables are
        cancelled too unless ``cancel_on_timeout=False`` (pass that when
        polling a long-lived task that must survive the timeout).
        Exceptions in the winner propagate.
        """
        futures = [self._ensure_future(a) for a in awaitables]
        done = self.create_future()

        def _make_cb(index: int) -> Callable[[SimFuture], None]:
            def _cb(_: SimFuture) -> None:
                if not done.done():
                    done.set_result(index)

            return _cb

        for index, future in enumerate(futures):
            future.add_done_callback(_make_cb(index))
        if timeout is not None:
            self.call_later(timeout, lambda: done.done() or done.set_result(-1))
        winner = await done
        if winner >= 0 or cancel_on_timeout:
            for index, future in enumerate(futures):
                if index != winner and not future.done():
                    future.cancel()
        if winner >= 0:
            futures[winner].result()  # propagate exceptions from the winner
        return winner

    async def wait_for(self, awaitable: Awaitable[Any], timeout: float) -> Any:
        """Await ``awaitable`` with a simulated-time timeout.

        Raises :class:`TimeoutError` if the timeout elapses first; the
        underlying future/task is cancelled in that case.
        """
        future = self._ensure_future(awaitable)
        timer = self.create_future()
        self.call_later(timeout, lambda: timer.done() or timer.set_result(None))
        done = self.create_future()

        def _first(which: str) -> Callable[[SimFuture], None]:
            def _cb(_: SimFuture) -> None:
                if not done.done():
                    done.set_result(which)

            return _cb

        future.add_done_callback(_first("value"))
        timer.add_done_callback(_first("timeout"))
        winner = await done
        if winner == "timeout" and not future.done():
            future.cancel()
            raise TimeoutError(f"wait_for timed out after {timeout}")
        return future.result()

    # -- run loop -------------------------------------------------------------

    def run(
        self,
        until_time: float | None = None,
        max_events: int | None = None,
        until: SimFuture | None = None,
    ) -> None:
        """Process events until the queue drains or a stop condition is met.

        Parameters
        ----------
        until_time:
            Stop (without processing them) once the next event would occur
            strictly after this simulated time.
        max_events:
            Stop after processing this many callbacks (guards runaway loops).
        until:
            Stop as soon as this future completes.
        """
        # Observability is tested ONCE per run() call, not per instant: a
        # stats-attached kernel dispatches through the batch-accounting
        # mirror below, while the default path stays verbatim pre-obs so
        # disabling observability costs nothing on the hot loop.  A kernel
        # observed mid-run (reconfiguration under an ambient capture
        # session) starts counting at its next run() call.  SCRIPTED mode
        # — and RANDOM mode with decision capture — always uses this loop:
        # it never batches, because same-instant groups are its choice
        # points, so there is nothing to count.
        grouped = self._scripted or (self._random_tie and self.capture_decisions)
        if self.obs is not None and not grouped:
            self._run_counting(until_time, max_events, until)
            return
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        try:
            while heap:
                if until is not None and until._state != _PENDING:
                    return
                when = heap[0][0]
                if until_time is not None and when > until_time:
                    self._now = until_time
                    return
                if grouped:
                    entry = self._pop_next()
                else:
                    entry = heappop(heap)
                self._now = when
                entry[3](*entry[4])
                processed += 1
                if max_events is not None and processed >= max_events:
                    return
                # Batch dispatch: drain further events at the *same* instant
                # without re-testing ``until_time`` (``when`` already passed
                # it).  The ``until`` check stays — stopping promptly once
                # the target future completes is part of the run() contract.
                if not grouped:
                    while heap and heap[0][0] == when:
                        if until is not None and until._state != _PENDING:
                            return
                        entry = heappop(heap)
                        entry[3](*entry[4])
                        processed += 1
                        if max_events is not None and processed >= max_events:
                            return
        finally:
            self._events_processed += processed

    def _run_counting(
        self,
        until_time: float | None,
        max_events: int | None,
        until: SimFuture | None,
    ) -> None:
        """Dispatch loop with same-instant batch accounting.

        Mirrors :meth:`run`'s non-scripted path exactly — same stop
        conditions, same dispatch order — plus one
        :meth:`~repro.obs.observe.KernelStats.record_batch` call per
        instant.  Kept separate so the observability-off hot loop pays
        nothing for the accounting.
        """
        obs = self.obs
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        try:
            while heap:
                if until is not None and until._state != _PENDING:
                    return
                when = heap[0][0]
                if until_time is not None and when > until_time:
                    self._now = until_time
                    return
                entry = heappop(heap)
                self._now = when
                entry[3](*entry[4])
                processed += 1
                if max_events is not None and processed >= max_events:
                    return
                batch = 1
                while heap and heap[0][0] == when:
                    if until is not None and until._state != _PENDING:
                        break
                    entry = heappop(heap)
                    entry[3](*entry[4])
                    processed += 1
                    batch += 1
                    if max_events is not None and processed >= max_events:
                        break
                obs.record_batch(batch)
                if max_events is not None and processed >= max_events:
                    return
        finally:
            self._events_processed += processed

    def _pop_next(self) -> tuple[float, float, int, Callable[..., None], tuple]:
        """Pop the next event, logging same-instant tie decisions.

        When several events share the minimal timestamp, the SCRIPTED
        scheduler consults :attr:`decision_script` (defaulting to 0 past
        its end) and records ``(choice, n_candidates)`` in
        :attr:`decision_log` — the model checker's branching evidence.

        A RANDOM kernel with :attr:`capture_decisions` takes the same
        grouped path but makes no choice of its own: the heap minimum
        (lowest random priority) wins exactly as it would without capture,
        and what gets logged is that winner's index within the candidates
        sorted by insertion order — the canonical order a SCRIPTED replay
        of the log will see, since scripted runs draw no priorities.
        """
        first = heapq.heappop(self._heap)
        candidates = [first]
        while self._heap and self._heap[0][0] == first[0]:
            candidates.append(heapq.heappop(self._heap))
        if len(candidates) == 1:
            return first
        if self._scripted:
            position = len(self.decision_log)
            choice = (
                self.decision_script[position]
                if position < len(self.decision_script)
                else 0
            )
            choice = max(0, min(choice, len(candidates) - 1))
            self.decision_log.append((choice, len(candidates)))
            chosen = candidates.pop(choice)
        else:
            fifo_rank = sorted(
                range(len(candidates)), key=lambda i: candidates[i][2]
            ).index(0)
            self.decision_log.append((fifo_rank, len(candidates)))
            chosen = candidates.pop(0)
        for entry in candidates:
            heapq.heappush(self._heap, entry)
        return chosen

    def run_until_complete(
        self,
        awaitable: Awaitable[Any],
        max_events: int | None = None,
        until_time: float | None = None,
    ) -> Any:
        """Drive the kernel until ``awaitable`` completes and return its result.

        Raises :class:`DeadlockError` if the event queue drains first, and
        :class:`TimeoutError` if ``max_events``/``until_time`` is exhausted
        first — both conditions indicate a liveness failure in the system
        under test (e.g. no majority quorum is reachable).
        """
        future = self._ensure_future(awaitable)
        self.run(until=future, max_events=max_events, until_time=until_time)
        if not future.done():
            if self._heap:
                raise TimeoutError(
                    "run_until_complete stopped by max_events/until_time "
                    "before the awaitable completed"
                )
            raise DeadlockError(
                "event queue drained while tasks were still waiting; "
                "the system under test cannot make progress"
            )
        return future.result()
