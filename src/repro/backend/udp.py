"""The ``udp`` backend: real localhost datagrams with modeled faults.

:class:`UdpBackend` deploys the algorithms over
:class:`~repro.runtime.udp.UdpNetwork` — one real UDP socket per node —
with the :class:`~repro.runtime.udp.DatagramFaultGate` applying the
cluster's :class:`~repro.config.ChannelConfig` loss/duplication/delay
probabilities and partition schedules to live packets.  Socket binding
is asynchronous, so wiring completes in :meth:`UdpBackend.create` rather
than ``__init__``::

    backend = await create_backend("udp", "ss-always", config)
    await backend.write(0, b"over-the-wire")
    await backend.close()
"""

from __future__ import annotations

import asyncio

from repro.analysis.metrics import MetricsCollector
from repro.backend.base import BACKENDS, Capabilities, ClusterBackend
from repro.config import ClusterConfig
from repro.runtime.asyncio_kernel import AsyncioKernel
from repro.runtime.udp import UdpNetwork

__all__ = ["UdpBackend"]


class UdpBackend(ClusterBackend):
    """A snapshot-object deployment over localhost UDP.

    The constructor only records parameters (and validates the algorithm
    name); :meth:`create` binds the sockets and wires the cluster.
    :meth:`close` is idempotent and safe even when :meth:`create` failed
    half-way.
    """

    name = "udp"
    capabilities = Capabilities(
        backend="udp",
        simulated_time=False,
        deterministic=False,
        schedule_pinning=False,
        in_flight_inspection=False,
        partitions=True,
        channel_faults=True,
        cycle_tracking=True,
        process_fanout=False,
        real_sockets=True,
    )

    def __init__(
        self,
        algorithm="ss-nonblocking",
        config: ClusterConfig | None = None,
        time_scale: float = 0.01,
    ) -> None:
        self.algorithm_name, self._algorithm_cls = self._resolve_algorithm(
            algorithm
        )
        self.config = config if config is not None else ClusterConfig()
        self.time_scale = time_scale
        self.metrics = MetricsCollector()
        self.processes = []
        self.kernel = None
        self.network = None
        self._created = False
        self._started = False
        self._closed = False

    async def create(self) -> "UdpBackend":
        """Bind sockets and build the processes; idempotent."""
        if self._created:
            return self
        self.kernel = AsyncioKernel(
            seed=self.config.seed, time_scale=self.time_scale
        )
        self.network = UdpNetwork(self.kernel, self.config, self.metrics)
        await self.network.open()
        self._wire_core(self._algorithm_cls)
        self._created = True
        return self

    def _shutdown_transport(self) -> None:
        if self.network is not None:
            self.network.close()

    async def close(self) -> None:
        """Stop the loops and close the sockets; idempotent."""
        if getattr(self, "_closed", False):
            return
        await super().close()
        await asyncio.sleep(0)  # let do-forever cancellations land


BACKENDS["udp"] = UdpBackend
