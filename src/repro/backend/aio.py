"""The ``asyncio`` backend: live event loop, modeled channels.

:class:`AsyncioBackend` runs the same algorithm objects over a real
:mod:`asyncio` event loop (wall-clock timers, one simulated time unit =
``time_scale`` seconds) while keeping the *modeled* channel fabric
(:class:`~repro.net.network.Network`), so partitions, channel fault
probabilities, and in-flight inspection all still work — the halfway
point between the deterministic simulator and real sockets.

Construct *inside* a running event loop (algorithm handlers
schedule callbacks at construction).
"""

from __future__ import annotations

from repro.analysis.metrics import MetricsCollector
from repro.backend.base import BACKENDS, Capabilities, ClusterBackend
from repro.config import ClusterConfig
from repro.net.network import Network
from repro.runtime.asyncio_kernel import AsyncioKernel

__all__ = ["AsyncioBackend"]


class AsyncioBackend(ClusterBackend):
    """A snapshot-object deployment driven by the asyncio event loop.

    Timers and do-forever loops run in (scaled) wall-clock time, so runs
    are *not* deterministic; schedule pinning and ``--jobs`` fan-out are
    sim-only.  Everything else — fault injection, partitions, cycle
    tracking, observability — works as on the simulator.
    """

    name = "asyncio"
    capabilities = Capabilities(
        backend="asyncio",
        simulated_time=False,
        deterministic=False,
        schedule_pinning=False,
        in_flight_inspection=True,
        partitions=True,
        channel_faults=True,
        cycle_tracking=True,
        process_fanout=False,
        real_sockets=False,
    )

    def __init__(
        self,
        algorithm="ss-nonblocking",
        config: ClusterConfig | None = None,
        time_scale: float = 0.01,
    ) -> None:
        self.algorithm_name, algorithm_cls = self._resolve_algorithm(algorithm)
        self.config = config if config is not None else ClusterConfig()
        self.time_scale = time_scale
        self.kernel = AsyncioKernel(
            seed=self.config.seed, time_scale=time_scale
        )
        self.metrics = MetricsCollector()
        self.network = Network(self.kernel, self.config, self.metrics)
        self._wire_core(algorithm_cls)


BACKENDS["asyncio"] = AsyncioBackend
