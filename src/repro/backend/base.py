"""The cluster-backend contract: one deployment surface, three runtimes.

The paper's algorithms assume nothing beyond asynchronous fail-prone
message passing, so a deployment of one snapshot object is always the
same wiring — an algorithm instance per node, a network fabric, a
metrics collector, an operation-history recorder, a cycle tracker, and
an observability hook — regardless of whether the substrate is the
deterministic simulator, a live asyncio event loop, or real UDP
datagrams.  :class:`ClusterBackend` holds that shared wiring core once;
the three runtimes (:class:`~repro.backend.sim.SimBackend`,
:class:`~repro.backend.aio.AsyncioBackend`,
:class:`~repro.backend.udp.UdpBackend`) only differ in how they build
their kernel and transport and in the :class:`Capabilities` they
advertise.

Harnesses program against the contract::

    create()    finish any asynchronous setup (idempotent)
    start()     launch the do-forever loops
    write()/snapshot()   invoke operations, recorded in .history
    submit_write()/submit_snapshot()   pipelined (non-awaiting) submission
    pipeline()  a depth-k client window over the submit path
    inject()    a TransientFaultInjector bound to this deployment
    partition()/heal()   connectivity control (real or modeled)
    .metrics / .history / .obs / .kernel / .network / .tracker
    close()     idempotent async teardown, safe after a failed create()

and consult :attr:`ClusterBackend.capabilities` before using a feature
that only some substrates provide (schedule pinning, in-flight packet
inspection, process fan-out).  Requesting an unsupported capability
raises :class:`~repro.errors.ConfigurationError` naming the capability,
so every harness degrades (or refuses) the same way.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, fields
from typing import Any, Awaitable, Callable, TYPE_CHECKING

from repro.analysis.cycles import CycleTracker
from repro.analysis.history import SNAPSHOT, WRITE, HistoryRecorder
from repro.analysis.metrics import MetricsCollector
from repro.config import ClusterConfig
from repro.errors import ConfigurationError
from repro.obs.observe import current_session

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.base import SnapshotAlgorithm, SnapshotResult
    from repro.fault import TransientFaultInjector

__all__ = [
    "Capabilities",
    "ClusterBackend",
    "OperationPipeline",
    "BACKENDS",
    "backend_class",
    "backend_capabilities",
    "backend_names",
    "require_backend_capability",
    "create_backend",
    "run_on_backend",
]

#: Human-readable blurb per capability field, used in error messages and
#: the ``python -m repro backends`` matrix.
CAPABILITY_NOTES: dict[str, str] = {
    "simulated_time": "deterministic virtual clock (run_until/max_events)",
    "deterministic": "same seed reproduces the same execution bit-for-bit",
    "schedule_pinning": "SCRIPTED tie-breaks / decision capture and replay",
    "in_flight_inspection": "inspect or corrupt in-flight packets",
    "partitions": "partition()/heal() connectivity control",
    "channel_faults": "loss/duplication/reorder fault injection",
    "cycle_tracking": "asynchronous-cycle tracker (settle_cycles)",
    "process_fanout": "parallel worker fan-out (--jobs N)",
    "real_sockets": "messages cross real OS sockets",
}


@dataclass(frozen=True, slots=True)
class Capabilities:
    """What one backend substrate can and cannot do.

    Harnesses branch on these flags instead of on backend names, so a
    fourth runtime only has to describe itself honestly to inherit every
    harness.
    """

    backend: str
    simulated_time: bool
    deterministic: bool
    schedule_pinning: bool
    in_flight_inspection: bool
    partitions: bool
    channel_faults: bool
    cycle_tracking: bool
    process_fanout: bool
    real_sockets: bool

    def describe(self) -> dict[str, bool]:
        """The capability flags as a plain ``{name: bool}`` dict."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "backend"
        }

    def require(self, capability: str, feature: str | None = None) -> None:
        """Raise :class:`ConfigurationError` unless ``capability`` holds.

        The error names every registered backend that *does* provide the
        missing capability, so the fix (``--backend NAME`` /
        ``create_backend(NAME, …)``) is in the message itself.
        """
        if capability not in CAPABILITY_NOTES:
            raise ConfigurationError(f"unknown capability {capability!r}")
        if not getattr(self, capability):
            wanted = feature or CAPABILITY_NOTES[capability]
            providers = [
                name
                for name in backend_names()
                if getattr(backend_capabilities(name), capability)
            ]
            if providers:
                hint = (
                    f"; backends providing it: {', '.join(providers)} "
                    f"(switch with --backend NAME or "
                    f"create_backend({providers[0]!r}, ...))"
                )
            else:
                hint = "; no registered backend provides it"
            raise ConfigurationError(
                f"{wanted} requires capability {capability!r}, which the "
                f"{self.backend!r} backend does not provide{hint}"
            )


#: Backend-name registry, populated by the implementation modules
#: (``repro.backend.sim`` / ``.aio`` / ``.udp``) at import time.
BACKENDS: dict[str, type["ClusterBackend"]] = {}


def _ensure_registry() -> None:
    if not BACKENDS:  # pragma: no cover - import side effect ordering
        import repro.backend  # noqa: F401  (registers the three backends)


def backend_names() -> list[str]:
    """The registered backend names, sorted."""
    _ensure_registry()
    return sorted(BACKENDS)


def backend_class(name: str) -> type["ClusterBackend"]:
    """Look a backend class up by name (``ConfigurationError`` if unknown)."""
    _ensure_registry()
    try:
        return BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None


def backend_capabilities(name: str) -> Capabilities:
    """The capabilities descriptor of a backend, by name."""
    return backend_class(name).capabilities


def require_backend_capability(
    name: str, capability: str, feature: str | None = None
) -> None:
    """Name-based form of :meth:`Capabilities.require` for CLI plumbing."""
    backend_capabilities(name).require(capability, feature)


class ClusterBackend:
    """Shared wiring core of every deployment of one snapshot object.

    Subclasses provide a kernel and a network fabric; everything else —
    algorithm resolution, process construction, metrics, history,
    cycle tracking, ambient observability attachment, operation
    recording, fault hooks, and the idempotent close — lives here once
    (it used to be copied across three divergent cluster wrappers).
    """

    #: Registry name; subclasses override.
    name = "abstract"
    capabilities: Capabilities

    # Attributes that must exist even after a failed/partial create(),
    # so close() is always safe.
    processes: list = []
    tracker: CycleTracker | None = None
    network = None
    kernel = None
    obs = None

    # -- wiring -----------------------------------------------------------

    @staticmethod
    def _resolve_algorithm(algorithm) -> tuple[str, type]:
        """Registry-name or class → ``(display_name, algorithm_cls)``."""
        from repro.core.cluster import ALGORITHMS

        if isinstance(algorithm, str):
            try:
                return algorithm, ALGORITHMS[algorithm]
            except KeyError:
                raise ConfigurationError(
                    f"unknown algorithm {algorithm!r}; "
                    f"choose from {sorted(ALGORITHMS)}"
                ) from None
        return algorithm.__name__, algorithm

    def _wire_core(self, algorithm_cls: type) -> None:
        """Build processes, tracker, history; attach any ambient session.

        Call with ``self.kernel``, ``self.network``, ``self.metrics``,
        and ``self.config`` already in place.  Does not start the
        do-forever loops.
        """
        self.processes = [
            algorithm_cls(node_id, self.kernel, self.network, self.config)
            for node_id in range(self.config.n)
        ]
        self.tracker = (
            CycleTracker(self.kernel, self.processes)
            if self.capabilities.cycle_tracking
            else None
        )
        self.history = HistoryRecorder()
        #: Observability hook (:class:`repro.obs.observe.ClusterObs` or
        #: ``None``).  When an ambient session is installed
        #: (``with repro.obs.session(): …``), every backend attaches
        #: itself on wiring — that is how the CLI's ``--trace-out``
        #: observes clusters built inside harness runners, on every
        #: substrate.
        self.obs = None
        self._started = False
        self._closed = False
        #: Tail of the per-node pipelined-operation chain (see
        #: :meth:`submit_write`): node id → the most recently submitted
        #: operation's task.  Submissions to a node run strictly FIFO.
        self._op_chains: dict[int, Any] = {}
        #: Algorithms that batch concurrent local operations into shared
        #: rounds (``CONCURRENT_CLIENTS = True``, e.g. ``amortized``)
        #: must *not* have the backend serialize submissions per node —
        #: FIFO chaining would defeat the batching.  Their submitted ops
        #: dispatch immediately and are tracked in ``_outstanding``.
        self._concurrent_clients = bool(
            getattr(algorithm_cls, "CONCURRENT_CLIENTS", False)
        )
        # Insertion-ordered (dict-as-set): ``outstanding_ops()`` must list
        # tasks in submission order, or draining them would perturb the
        # deterministic sim schedule run-to-run.
        self._outstanding: dict = {}
        ambient = current_session()
        if ambient is not None:
            ambient.attach(self)

    async def create(self) -> "ClusterBackend":
        """Finish any asynchronous setup (socket binding, …); idempotent.

        Backends whose wiring is synchronous complete it in ``__init__``
        and return immediately here.
        """
        return self

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start every node's do-forever loop."""
        if getattr(self, "_started", False):
            return
        for process in self.processes:
            process.start()
        self._started = True

    def stop(self) -> None:
        """Stop every node's do-forever loop."""
        for process in self.processes:
            process.stop()
        self._started = False

    async def close(self) -> None:
        """Tear the deployment down; idempotent, safe after failed create.

        Stops the loops and releases any transport resources.  Calling
        twice (or on a backend whose :meth:`create` never completed) is a
        no-op — the lifecycle asymmetry the old wrappers had (sync
        ``UdpNetwork.close`` vs an async cluster close) is resolved
        here: the *contract* close is async everywhere.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        self.stop()
        self._shutdown_transport()

    def _shutdown_transport(self) -> None:
        """Release transport resources (sockets); default no-op."""

    # -- topology ----------------------------------------------------------

    def node(self, node_id: int) -> "SnapshotAlgorithm":
        """The algorithm instance running at ``node_id``."""
        return self.processes[node_id]

    def alive_nodes(self) -> list[int]:
        """Ids of currently non-crashed nodes."""
        return [p.node_id for p in self.processes if not p.crashed]

    def for_each_process(self, action: Callable[[Any], None]) -> None:
        """Apply an action to every process (fault injection hooks)."""
        for process in self.processes:
            action(process)

    # -- operations --------------------------------------------------------

    async def write(self, node_id: int, value: Any) -> int:
        """Invoke ``write(value)`` at a node, recording it in the history."""
        op_id = self.history.invoke(node_id, WRITE, value, now=self.kernel.now)
        obs = self.obs
        span = obs.begin_op(node_id, WRITE, op_id) if obs is not None else None
        try:
            ts = await self.processes[node_id].write(value)
        except BaseException:
            self.history.abort(op_id, now=self.kernel.now)
            if span is not None:
                obs.end_op(span, status="aborted")
            raise
        self.history.respond(op_id, result=ts, now=self.kernel.now)
        if span is not None:
            obs.end_op(span)
        return ts

    async def snapshot(self, node_id: int) -> "SnapshotResult":
        """Invoke ``snapshot()`` at a node, recording it in the history."""
        op_id = self.history.invoke(node_id, SNAPSHOT, now=self.kernel.now)
        obs = self.obs
        span = (
            obs.begin_op(node_id, SNAPSHOT, op_id) if obs is not None else None
        )
        try:
            result = await self.processes[node_id].snapshot()
        except BaseException:
            self.history.abort(op_id, now=self.kernel.now)
            if span is not None:
                obs.end_op(span, status="aborted")
            raise
        self.history.respond(op_id, result=result, now=self.kernel.now)
        if span is not None:
            obs.end_op(span)
        return result

    # -- pipelined operation submission ------------------------------------

    def _submit(self, node_id: int, factory) -> Any:
        """Chain one operation onto ``node_id``'s FIFO dispatch queue.

        Returns a task handle (``SimTask`` on the simulator,
        ``asyncio.Task`` on the live backends) that completes with the
        operation's result.  Operations submitted to the same node
        dispatch strictly in submission order — the paper's model is one
        sequential client per node (SWMR), and the algorithm objects
        enforce it — so pipelining overlaps the *client's* round trips,
        not a single node's protocol rounds.  Submissions to different
        nodes genuinely run concurrently, which is the throughput axis
        the load driver sweeps.

        A failed operation rejects only its own handle; later submissions
        on the same node still dispatch (the chain swallows predecessors'
        exceptions — they are reported where they were submitted).

        Algorithms with ``CONCURRENT_CLIENTS = True`` (the amortized
        variant) batch concurrent local operations into shared protocol
        rounds; for those, per-node FIFO chaining would serialize exactly
        the concurrency the batching needs, so submissions dispatch
        immediately and are tracked in :meth:`outstanding_ops` instead.
        """
        if self._concurrent_clients:
            task = self.kernel.create_task(factory(), name=f"op@{node_id}")
            self._outstanding[task] = None
            task.add_done_callback(
                lambda t: self._outstanding.pop(t, None)
            )
            return task
        previous = self._op_chains.get(node_id)

        async def chained() -> Any:
            if previous is not None:
                try:
                    await previous
                except BaseException:  # noqa: BLE001 - reported on its own handle
                    pass
            return await factory()

        task = self.kernel.create_task(chained(), name=f"op@{node_id}")
        self._op_chains[node_id] = task
        return task

    def submit_write(self, node_id: int, value: Any) -> Any:
        """Pipelined :meth:`write`: enqueue and return a task handle.

        Unlike ``await write(...)``, the caller keeps control immediately
        and can have several operations in flight (see
        :meth:`pipeline` for a bounded-depth client window).
        """
        return self._submit(node_id, lambda: self.write(node_id, value))

    def submit_snapshot(self, node_id: int) -> Any:
        """Pipelined :meth:`snapshot`: enqueue and return a task handle."""
        return self._submit(node_id, lambda: self.snapshot(node_id))

    @property
    def concurrent_clients(self) -> bool:
        """Whether the deployed algorithm admits overlapping local clients."""
        return self._concurrent_clients

    def outstanding_ops(self) -> list:
        """Task handles that must be awaited to drain submitted operations.

        Under FIFO chaining this is the tail of each node's chain (awaiting
        the tail awaits everything before it); under concurrent dispatch
        (``CONCURRENT_CLIENTS`` algorithms) it is every unfinished task.
        """
        if self._concurrent_clients:
            return list(self._outstanding)
        return list(self._op_chains.values())

    def pipeline(self, depth: int = 4) -> "OperationPipeline":
        """A depth-``depth`` client window over the submit path."""
        return OperationPipeline(self, depth=depth)

    async def settle_cycles(self, cycles: int) -> None:
        """Let the cluster run for a number of asynchronous cycles."""
        self.capabilities.require("cycle_tracking", "settle_cycles()")
        await self.tracker.wait_cycles(cycles)

    # -- fault controls ----------------------------------------------------

    def crash(self, node_id: int) -> None:
        """Crash a node (stops taking steps; messages to it are lost)."""
        self.processes[node_id].crash()

    def resume(self, node_id: int, restart: bool = False) -> None:
        """Resume a crashed node (optionally with a detectable restart)."""
        self.processes[node_id].resume(restart=restart)

    def inject(self, seed: int = 0) -> "TransientFaultInjector":
        """A transient-fault injector bound to this deployment.

        Node-state corruption works on every backend; channel-content
        corruption silently affects zero packets where
        ``in_flight_inspection`` is unsupported (real sockets hold the
        packets, not us).
        """
        from repro.fault import TransientFaultInjector

        return TransientFaultInjector(self, seed=seed)

    def partition(self, *groups: set) -> None:
        """Block connectivity between node groups (modeled or real)."""
        self.capabilities.require("partitions", "partition()")
        self.network.partition(*groups)

    def heal(self) -> None:
        """Remove all partitions."""
        self.network.heal()

    def throttle(self, node_id: int, factor: float = 10.0) -> None:
        """Make a node limp: stretch message delays to/from it by ``factor``.

        Supported on every backend — the sim and asyncio fabrics stretch
        their modeled channel delays, the UDP fabric stretches the fault
        gate's hold times — so gray-failure (limplock) scenarios run
        identically everywhere.  ``factor=1.0`` restores the node.
        """
        self.network.throttle(node_id, factor)

    # -- diagnostics -------------------------------------------------------

    def quiescent_registers(self) -> list[tuple[int, ...]]:
        """Every node's register vector clock (diagnostics)."""
        return [p.reg.vector_clock() for p in self.processes]

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {getattr(self, 'algorithm_name', '?')} "
            f"n={self.config.n if getattr(self, 'config', None) else '?'} "
            f"backend={self.name}>"
        )


class OperationPipeline:
    """A client that keeps up to ``depth`` operations in flight.

    Wraps a backend's submit path (:meth:`ClusterBackend.submit_write` /
    :meth:`~ClusterBackend.submit_snapshot`) with a bounded window:
    submitting past the depth awaits the *oldest* outstanding operation
    first (classic pipelining back-pressure), so a closed-loop client
    with ``depth=k`` always has ``k`` requests outstanding instead of
    round-tripping serially.  ``depth=1`` degenerates to today's
    one-at-a-time behaviour.

    Handles returned by ``write``/``snapshot`` are the backend's task
    objects; :meth:`drain` awaits everything still outstanding and
    re-raises the first failure.
    """

    def __init__(self, cluster: ClusterBackend, depth: int = 4) -> None:
        if depth < 1:
            raise ConfigurationError(f"pipeline depth must be >= 1, got {depth}")
        self.cluster = cluster
        self.depth = depth
        self._window: list[Any] = []

    @property
    def in_flight(self) -> int:
        """Operations submitted but not yet awaited out of the window."""
        return len(self._window)

    async def reserve(self) -> None:
        """Await completions until the window has a free slot.

        The back-pressure half of the pipeline: with ``depth`` operations
        outstanding this awaits the *oldest* until fewer than ``depth``
        remain, so a client that reserves before every submission keeps
        exactly ``depth`` requests in flight (``depth=1`` is genuinely
        serial).  Failures of awaited operations propagate here.
        """
        while len(self._window) >= self.depth:
            await self._window.pop(0)

    def admit(self, task: Any) -> Any:
        """Add an already-submitted task to the window (no back-pressure).

        For callers (like the load driver) that submit through
        ``submit_write``/``submit_snapshot`` themselves — to timestamp
        the submission — after :meth:`reserve` freed a slot.
        """
        self._window.append(task)
        return task

    async def write(self, node_id: int, value: Any) -> Any:
        """Submit a write once a slot is free; returns its task handle."""
        await self.reserve()
        return self.admit(self.cluster.submit_write(node_id, value))

    async def snapshot(self, node_id: int) -> Any:
        """Submit a snapshot once a slot is free; returns its task handle."""
        await self.reserve()
        return self.admit(self.cluster.submit_snapshot(node_id))

    async def drain(self) -> None:
        """Await every outstanding operation (first failure re-raises)."""
        window, self._window = self._window, []
        for task in window:
            await task


async def create_backend(
    name: str,
    algorithm="ss-nonblocking",
    config: ClusterConfig | None = None,
    *,
    time_scale: float = 0.002,
    start: bool = True,
) -> ClusterBackend:
    """Build, :meth:`~ClusterBackend.create`, and start a backend by name.

    Must run inside an event loop for the live backends (``asyncio``,
    ``udp``); the ``sim`` backend ignores ``time_scale``.
    """
    cls = backend_class(name)
    if cls.capabilities.simulated_time:
        backend = cls(algorithm, config, start=False)
    else:
        backend = cls(algorithm, config, time_scale=time_scale)
    await backend.create()
    if start:
        backend.start()
    return backend


def run_on_backend(
    name: str,
    algorithm,
    config: ClusterConfig | None,
    body: Callable[[ClusterBackend], Awaitable[Any]],
    *,
    time_scale: float = 0.002,
    max_events: int | None = None,
) -> Any:
    """Run ``async body(cluster)`` to completion on the named backend.

    The one driver every cross-backend harness shares: it owns the full
    lifecycle (create → start → body → close) and hides the substrate
    difference — the simulator drives its virtual clock via
    ``run_until_complete`` (honouring ``max_events``), the live backends
    run under ``asyncio.run``.  Returns whatever ``body`` returns.
    """
    cls = backend_class(name)
    if cls.capabilities.simulated_time:
        cluster = cls(algorithm, config)
        try:
            return cluster.kernel.run_until_complete(
                body(cluster), max_events=max_events
            )
        finally:
            cluster.stop()

    async def main() -> Any:
        cluster = await create_backend(
            name, algorithm, config, time_scale=time_scale
        )
        try:
            return await body(cluster)
        finally:
            await cluster.close()

    return asyncio.run(main())
