"""The ``sim`` backend: the deterministic discrete-event deployment.

:class:`SimBackend` is the :class:`~repro.backend.base.ClusterBackend`
implementation over :class:`~repro.sim.kernel.Kernel` — the substrate
every deterministic harness (schedule exploration, fuzz shrinking,
golden-trace regression) depends on.  It is the richest backend: every
capability holds, and it adds the synchronous conveniences
(:meth:`write_sync`, :meth:`run_until`, …) that only make sense when the
caller owns the clock.
"""

from __future__ import annotations

from typing import Any, Awaitable

from repro.analysis.metrics import MetricsCollector
from repro.backend.base import BACKENDS, Capabilities, ClusterBackend
from repro.config import ClusterConfig
from repro.net.network import Network
from repro.sim.kernel import Kernel, SimTask, TieBreak

__all__ = ["SimBackend"]


class SimBackend(ClusterBackend):
    """A complete simulated deployment of one snapshot-object algorithm.

    Parameters
    ----------
    algorithm:
        A key of :data:`~repro.core.cluster.ALGORITHMS` or an algorithm
        class.
    config:
        Cluster parameters (defaults to ``ClusterConfig()``).
    start:
        Whether to start every node's do-forever loop immediately.
    tie_break:
        Event-ordering policy for the kernel (``"random"`` models an
        adversarial asynchronous scheduler; ``"scripted"`` replays a
        pinned schedule).
    kernel:
        An externally supplied kernel lets several clusters share one
        simulated timeline (used by reconfiguration: the old and new
        configurations coexist during the handoff).
    """

    name = "sim"
    capabilities = Capabilities(
        backend="sim",
        simulated_time=True,
        deterministic=True,
        schedule_pinning=True,
        in_flight_inspection=True,
        partitions=True,
        channel_faults=True,
        cycle_tracking=True,
        process_fanout=True,
        real_sockets=False,
    )

    def __init__(
        self,
        algorithm="ss-nonblocking",
        config: ClusterConfig | None = None,
        start: bool = True,
        tie_break: str = TieBreak.RANDOM,
        kernel: Kernel | None = None,
    ) -> None:
        # Wiring order is part of the determinism contract: the Network
        # constructor draws from kernel.rng to seed the channel RNG, so
        # seeded golden traces depend on this exact sequence.
        self.algorithm_name, algorithm_cls = self._resolve_algorithm(algorithm)
        self.config = config if config is not None else ClusterConfig()
        self.kernel = (
            kernel
            if kernel is not None
            else Kernel(seed=self.config.seed, tie_break=tie_break)
        )
        self.metrics = MetricsCollector()
        self.network = Network(self.kernel, self.config, self.metrics)
        self._wire_core(algorithm_cls)
        if start:
            self.start()

    # -- synchronous convenience (the caller owns the simulated clock) ------

    def write_sync(
        self, node_id: int, value: Any, max_events: int | None = 2_000_000
    ) -> int:
        """Run the kernel until a single write completes."""
        return self.kernel.run_until_complete(
            self.write(node_id, value), max_events=max_events
        )

    def snapshot_sync(self, node_id: int, max_events: int | None = 2_000_000):
        """Run the kernel until a single snapshot completes."""
        return self.kernel.run_until_complete(
            self.snapshot(node_id), max_events=max_events
        )

    def run_until(
        self, awaitable: Awaitable[Any], max_events: int | None = 5_000_000
    ) -> Any:
        """Drive the kernel until an arbitrary awaitable completes."""
        return self.kernel.run_until_complete(awaitable, max_events=max_events)

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration`` (background traffic runs)."""
        self.kernel.run(until_time=self.kernel.now + duration)

    def spawn(self, coro, name: str = "") -> SimTask:
        """Start a background task on the cluster's kernel."""
        return self.kernel.create_task(coro, name=name)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.algorithm_name} "
            f"n={self.config.n} t={self.kernel.now:.1f}>"
        )


BACKENDS["sim"] = SimBackend
