"""One cluster contract, three runtimes.

Every deployment of a snapshot object — simulated, live asyncio, or real
UDP — implements the same :class:`~repro.backend.base.ClusterBackend`
contract and advertises a :class:`~repro.backend.base.Capabilities`
descriptor, so every harness (experiments, chaos, verify, fuzz, latency)
runs on any substrate and degrades consistently where a capability is
sim-only.  See ``docs/runtimes.md`` for the capability matrix.
"""

from repro.backend.base import (
    BACKENDS,
    Capabilities,
    CAPABILITY_NOTES,
    ClusterBackend,
    OperationPipeline,
    backend_capabilities,
    backend_class,
    backend_names,
    create_backend,
    require_backend_capability,
    run_on_backend,
)
from repro.backend.aio import AsyncioBackend
from repro.backend.sim import SimBackend
from repro.backend.udp import UdpBackend

__all__ = [
    "BACKENDS",
    "Capabilities",
    "CAPABILITY_NOTES",
    "ClusterBackend",
    "OperationPipeline",
    "AsyncioBackend",
    "SimBackend",
    "UdpBackend",
    "backend_capabilities",
    "backend_class",
    "backend_names",
    "create_backend",
    "require_backend_capability",
    "run_on_backend",
]
